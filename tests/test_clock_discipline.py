"""Repo-wide clock-discipline lint.

Determinism contract: library code must never read a wall clock
directly — every timed component (tracer, serving metrics, batcher,
retry backoff, campaign journal) takes an injectable ``clock`` so
tests pin exact durations and traces replay byte-identically.  This
lint walks the AST of every module under ``src/repro`` and rejects
bare clock *calls* (``time.time()``, ``time.perf_counter()``,
``time.monotonic()``, ...).  Passing ``time.perf_counter`` as a
default ``clock=`` argument is a reference, not a call, and stays
legal everywhere — that is exactly the injectable-clock idiom.

Allowlisted subtrees (the designated clock owners):

* ``repro/obs/`` — the observability layer is where real clocks live;
* ``repro/resilience/`` — retry backoff and chaos schedules own their
  injectable-clock defaults and real-sleep fallbacks;
* ``repro/serve/`` — the server/batcher clock plumbing plus the load
  generator, which paces arrivals against real wall clock by design;
* ``repro/store/`` — the result store stamps each ingested entry with
  a real creation time (``created_s`` is provenance, not simulation
  state), and the job-dir executor paces its claim polling.

Benchmarks and tests are out of scope: benchmarks measure wall clock
by definition, and tests inject fake clocks through the same seams
this lint protects.
"""

from __future__ import annotations

import ast
import pathlib

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: ``time`` module attributes that read a clock.
CLOCK_CALLS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "clock_gettime", "clock_gettime_ns",
})

#: Subtrees (relative to ``src/repro``) allowed to read real clocks.
ALLOWED_SUBTREES = ("obs", "resilience", "serve", "store")

#: Modules *inside* an allowed subtree that must stay clock-free
#: anyway.  The fleet's shared-memory data plane is pure layout and
#: copies — a clock read there would be policy leaking into the data
#: plane and a determinism hazard for the bit-identical fleet
#: contract.
CLOCK_FREE_MODULES = ("serve/shm.py",)


def _bare_clock_calls(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in CLOCK_CALLS):
            violations.append(f"{path}:{node.lineno}: time.{func.attr}()")
    return violations


def test_src_tree_exists():
    assert SRC_ROOT.is_dir()
    assert (SRC_ROOT / "obs").is_dir()


def test_no_bare_clock_calls_outside_designated_owners():
    violations = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT)
        if relative.parts[0] in ALLOWED_SUBTREES:
            continue
        violations.extend(_bare_clock_calls(path))
    assert not violations, (
        "bare clock reads outside the designated owners — take an "
        "injectable clock= instead:\n" + "\n".join(violations)
    )


def test_data_plane_modules_are_clock_free():
    # The serve/ subtree is a designated clock owner, but its
    # shared-memory data plane is explicitly not: no clocks, no
    # policy, just layout (see the module docstring of serve/shm.py).
    for relative in CLOCK_FREE_MODULES:
        path = SRC_ROOT / relative
        assert path.is_file(), f"{relative} disappeared; update the lint"
        violations = _bare_clock_calls(path)
        assert not violations, (
            f"{relative} is data plane and must not read clocks:\n"
            + "\n".join(violations)
        )
        tree = ast.parse(path.read_text(), filename=str(path))
        imports = {
            alias.name
            for node in ast.walk(tree)
            if isinstance(node, ast.Import)
            for alias in node.names
        } | {
            node.module
            for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module
        }
        assert "time" not in imports, (
            f"{relative} imports the time module; the data plane "
            "takes no clocks at all"
        )


def test_lint_catches_a_violation(tmp_path):
    # The lint must actually detect what it claims to forbid.
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "def f():\n"
        "    return time.perf_counter()\n"
    )
    assert _bare_clock_calls(bad) == [f"{bad}:3: time.perf_counter()"]


def test_lint_allows_clock_references(tmp_path):
    # The injectable-clock idiom — passing the function, not calling
    # it — must stay legal.
    good = tmp_path / "good.py"
    good.write_text(
        "import time\n"
        "def f(clock=time.perf_counter):\n"
        "    return clock()\n"
    )
    assert _bare_clock_calls(good) == []
