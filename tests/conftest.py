"""Shared fixtures: trained models and common hardware objects.

The "fast" reference model (1500 digits, 4 epochs) trains in a few
seconds and is cached on disk, so the integration tests stay quick
after the first run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.pretrained import ReferenceModel, get_reference_model
from repro.sram.electrical import TransposedPortModel
from repro.sram.readport import ReadPortModel
from repro.tile.backends import backend_names


@pytest.fixture(params=backend_names())
def backend(request) -> str:
    """Every registered engine-backend name, one at a time.

    Parametrized straight off the registry, so registering a new
    backend automatically runs it through every test using this
    fixture (the conformance suite's closure property).  Tests using
    it are auto-marked ``backend`` — see pytest.ini and
    ``pytest_collection_modifyitems`` below.
    """
    return request.param


@pytest.fixture()
def result_store(tmp_path):
    """A fresh, empty result store in this test's tmp directory.

    Tests using it are auto-marked ``store`` — see pytest.ini and
    ``pytest_collection_modifyitems`` below (the ``backend`` pattern).
    """
    from repro.store import ResultStore

    store = ResultStore(tmp_path / "store.sqlite")
    yield store
    store.close()


def pytest_collection_modifyitems(items) -> None:
    for item in items:
        fixtures = getattr(item, "fixturenames", ())
        if "backend" in fixtures:
            item.add_marker(pytest.mark.backend)
        if "result_store" in fixtures:
            item.add_marker(pytest.mark.store)


@pytest.fixture(scope="session")
def fast_model() -> ReferenceModel:
    """Small trained network + dataset (cached across the session)."""
    return get_reference_model(quality="fast", seed=42)


@pytest.fixture(scope="session")
def transposed_model() -> TransposedPortModel:
    return TransposedPortModel()


@pytest.fixture(scope="session")
def read_port_model() -> ReadPortModel:
    return ReadPortModel()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
