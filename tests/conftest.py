"""Shared fixtures: trained models and common hardware objects.

The "fast" reference model (1500 digits, 4 epochs) trains in a few
seconds and is cached on disk, so the integration tests stay quick
after the first run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.learning.pretrained import ReferenceModel, get_reference_model
from repro.sram.electrical import TransposedPortModel
from repro.sram.readport import ReadPortModel
from repro.tile.backends import backend_names


@pytest.fixture(params=backend_names())
def backend(request) -> str:
    """Every registered engine-backend name, one at a time.

    Parametrized straight off the registry, so registering a new
    backend automatically runs it through every test using this
    fixture (the conformance suite's closure property).  Tests using
    it are auto-marked ``backend`` — see pytest.ini and
    ``pytest_collection_modifyitems`` below.
    """
    return request.param


def pytest_collection_modifyitems(items) -> None:
    for item in items:
        if "backend" in getattr(item, "fixturenames", ()):
            item.add_marker(pytest.mark.backend)


@pytest.fixture(scope="session")
def fast_model() -> ReferenceModel:
    """Small trained network + dataset (cached across the session)."""
    return get_reference_model(quality="fast", seed=42)


@pytest.fixture(scope="session")
def transposed_model() -> TransposedPortModel:
    return TransposedPortModel()


@pytest.fixture(scope="session")
def read_port_model() -> ReadPortModel:
    return ReadPortModel()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
