"""Monte-Carlo variation study of the read path."""

import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.sram.readport import CLOCK_PERIOD_NS
from repro.sram.variation_study import VariationStudy
from repro.tech.corners import ProcessVariation


@pytest.fixture(scope="module")
def study() -> VariationStudy:
    return VariationStudy(variation=ProcessVariation(seed=7))


class TestDistribution:
    def test_typical_faster_than_shipped(self, study):
        """The shipped (3-sigma) figure must sit above the typical cell."""
        dist = study.distribution(CellType.C1RW4R, n=2048)
        assert dist.typical_read_ns < dist.shipped_read_ns
        assert dist.guardband_ns > 0.0

    def test_mean_near_typical(self, study):
        dist = study.distribution(CellType.C1RW4R, n=4096)
        assert dist.mean_read_ns == pytest.approx(
            dist.typical_read_ns, rel=0.05
        )

    def test_spread_positive(self, study):
        dist = study.distribution(CellType.C1RW2R, n=2048)
        assert dist.sigma_read_ns > 0.0
        assert dist.worst_sample_read_ns > dist.mean_read_ns

    def test_shipped_figure_covers_three_sigma(self, study):
        """Table 1: the design is timed at the 3-sigma worst case."""
        for cell in (CellType.C1RW1R, CellType.C1RW2R,
                     CellType.C1RW3R, CellType.C1RW4R):
            dist = study.distribution(cell, n=4096)
            assert dist.covers_three_sigma, cell

    def test_more_variation_widens_distribution(self):
        tight = VariationStudy(variation=ProcessVariation(sigma_drive=0.02, seed=1))
        loose = VariationStudy(variation=ProcessVariation(sigma_drive=0.12, seed=1))
        cell = CellType.C1RW4R
        assert (
            loose.distribution(cell).sigma_read_ns
            > 2.0 * tight.distribution(cell).sigma_read_ns
        )


class TestYield:
    def test_budget_at_shipped_clock_is_shipped_read(self, study):
        cell = CellType.C1RW4R
        budget = study.read_budget_ns(cell, CLOCK_PERIOD_NS[cell])
        assert budget == pytest.approx(study.read_ports.read_time_ns(cell))

    def test_yield_high_at_shipped_clock(self, study):
        y = study.parametric_yield(
            CellType.C1RW4R, CLOCK_PERIOD_NS[CellType.C1RW4R], n=8192
        )
        assert y > 0.995  # ~Phi(3) by construction

    def test_yield_collapses_when_overclocked(self, study):
        y = study.parametric_yield(CellType.C1RW4R, clock_period_ns=1.0, n=4096)
        assert y < 0.5

    def test_yield_monotonic_in_clock(self, study):
        slow = study.parametric_yield(CellType.C1RW2R, 1.3, n=4096)
        fast = study.parametric_yield(CellType.C1RW2R, 1.1, n=4096)
        assert slow >= fast

    def test_relaxed_clock_reaches_full_yield(self, study):
        cell = CellType.C1RW1R
        y = study.parametric_yield(cell, CLOCK_PERIOD_NS[cell] + 0.3, n=4096)
        assert y == pytest.approx(1.0)


class TestValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            VariationStudy(rows=0)

    def test_rejects_bad_sample_count(self, study):
        with pytest.raises(ConfigurationError):
            study.sample_read_times(CellType.C1RW4R, n=0)

    def test_rejects_bad_clock(self, study):
        with pytest.raises(ConfigurationError):
            study.parametric_yield(CellType.C1RW4R, 0.0)
