"""Workload-level integration: the paper's cycle arithmetic end to end."""

import numpy as np
import pytest

from repro.snn.encode import encode_images
from repro.sram.bitcell import CellType
from repro.tile.network import EsamNetwork, InferenceTrace


class TestPaperWorkloadArithmetic:
    """Section 4.4.2 structure checks on the real trained network."""

    @pytest.fixture(scope="class")
    def traced(self, fast_model):
        snn = fast_model.snn
        network = EsamNetwork(
            snn.weights, snn.thresholds, output_bias=snn.output_bias,
            cell_type=CellType.C1RW4R,
        )
        trace = InferenceTrace()
        spikes = encode_images(fast_model.dataset.test_images[:12])
        for s in spikes:
            network.infer(s, trace)
        return network, trace, spikes

    def test_first_layer_uses_six_arbiters(self, traced):
        network, _, _ = traced
        assert len(network.tiles[0].arbiters) == 6
        assert len(network.tiles[1].arbiters) == 2

    def test_array_grid_matches_paper_mapping(self, traced):
        network, _, _ = traced
        counts = [t.mapping.array_count for t in network.tiles]
        assert counts == [12, 4, 4, 2]

    def test_cycles_consistent_with_grants_and_ports(self, traced):
        """Each tile's cycles >= its per-arbiter spike load / ports."""
        network, trace, _ = traced
        n = trace.images
        for tile, cycles in zip(network.tiles, trace.per_tile_cycles):
            spikes = tile.stats.input_spikes / n
            lower_bound = spikes / (len(tile.arbiters) * tile.ports)
            assert cycles / n >= lower_bound

    def test_bottleneck_in_expected_band(self, traced):
        """44 MInf/s at 810 MHz implies ~18 cycles/inference; the
        trained network should land in that neighbourhood."""
        _, trace, _ = traced
        bottleneck = trace.bottleneck_cycles / trace.images
        assert 10.0 < bottleneck < 35.0

    def test_grants_equal_spikes(self, traced):
        network, trace, spikes = traced
        total_input = int(spikes.sum())
        l1_grants = network.tiles[0].stats.grants
        assert l1_grants == total_input

    def test_reads_scale_with_column_blocks(self, traced):
        network, _, _ = traced
        for tile in network.tiles:
            assert tile.stats.array_reads == (
                tile.stats.grants * tile.mapping.col_blocks
            )

    def test_throughput_order_of_magnitude(self, traced):
        network, trace, _ = traced
        bottleneck = trace.bottleneck_cycles / trace.images
        throughput_minf = 1e3 / (bottleneck * network.clock_period_ns)
        assert 20.0 < throughput_minf < 90.0
