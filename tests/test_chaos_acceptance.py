"""Chaos acceptance: the fault-tolerance claims, proven end-to-end.

Three claims from the resilience layer's contract, each driven through
the real stack with a seeded :class:`ChaosPolicy`:

* **bit-identical recovery** — a campaign whose workers crash (both
  the in-process ``WorkerCrashError`` path and real ``os._exit`` in a
  process pool) produces exactly the rows and curves of a fault-free
  run;
* **zero recomputation on resume** — a campaign killed mid-run resumes
  from its journal + cache and evaluates only the unfinished points;
* **no silent drops** — the campaign CLIs convert Ctrl-C into partial
  results, a resume hint and exit 130, and a chaos-stressed serving
  run accounts for every admitted request.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.reliability.runner as reliability_runner
from repro.errors import QueueFullError, ReproError, WorkerCrashError
from repro.reliability import FaultCampaignSpec, ReliabilityRunner
from repro.resilience import ChaosPolicy, RetryPolicy, SupervisorPolicy
from repro.serve import (
    BatchPolicy,
    FleetServer,
    InferenceServer,
    ModelRegistry,
)
from repro.sram.bitcell import CellType
from repro.sweep import ResultCache, SweepRunner
from repro.sweep.spec import SweepSpec

from tests.test_serve import random_network, random_spikes

QUALITY = "fast"


def small_campaign(trials=2, bers=(0.0, 1e-3, 5e-2)) -> FaultCampaignSpec:
    return FaultCampaignSpec(
        name="chaos-acceptance", bit_error_rates=bers, trials=trials,
        sample_images=8, quality=QUALITY,
    )


def small_sweep() -> SweepSpec:
    return SweepSpec(
        name="chaos-sweep", cell_types=(CellType.C1RW4R,),
        vprechs=(0.5, 0.6), sample_images=(8,), quality=QUALITY,
    )


def campaign_payload(result) -> list[dict]:
    """Cache-independent view of a campaign result for equality checks."""
    return [
        {**row.point.to_dict(), "accuracies": list(row.accuracies),
         "flipped_bits": list(row.flipped_bits)}
        for row in result.rows
    ]


# -- bit-identical recovery -----------------------------------------------------------


class TestBitIdenticalRecovery:
    def test_serial_campaign_survives_injected_crashes(self, tmp_path):
        spec = small_campaign()
        clean = ReliabilityRunner(
            spec, cache=ResultCache(tmp_path / "clean")
        ).run()
        chaos = ChaosPolicy(seed=11, worker_crash_p=0.7)
        # The schedule must actually injure this run for the test to
        # mean anything.
        injected = sum(chaos.crashes_for(i) for i in range(len(spec)))
        assert injected > 0
        recovered = ReliabilityRunner(
            spec, cache=ResultCache(tmp_path / "chaos"),
            chaos=chaos, supervisor=SupervisorPolicy(retry_budget=2),
        ).run()
        assert campaign_payload(recovered) == campaign_payload(clean)
        assert [c.to_dict() for c in recovered.curves] == \
            [c.to_dict() for c in clean.curves]
        assert recovered.stats.evaluated == len(spec)

    def test_pooled_campaign_survives_real_worker_crashes(self, tmp_path):
        # os._exit(86) in spawned workers -> BrokenProcessPool -> pool
        # rebuild + re-queue; results still bit-identical.
        spec = small_campaign(trials=1, bers=(0.0, 1e-3))
        clean = ReliabilityRunner(
            spec, cache=ResultCache(tmp_path / "clean")
        ).run()
        chaos = ChaosPolicy(seed=5, worker_crash_p=0.9)
        assert sum(chaos.crashes_for(i) for i in range(len(spec))) > 0
        recovered = ReliabilityRunner(
            spec, n_workers=2, cache=ResultCache(tmp_path / "chaos"),
            chaos=chaos, supervisor=SupervisorPolicy(retry_budget=2),
        ).run()
        assert campaign_payload(recovered) == campaign_payload(clean)

    def test_sweep_engine_shares_the_supervisor(self, tmp_path):
        spec = small_sweep()
        clean = SweepRunner(
            spec, cache=ResultCache(tmp_path / "clean")
        ).run()
        chaos = ChaosPolicy(seed=2, worker_crash_p=0.8)
        assert sum(chaos.crashes_for(i) for i in range(len(spec))) > 0
        recovered = SweepRunner(
            spec, cache=ResultCache(tmp_path / "chaos"),
            chaos=chaos, supervisor=SupervisorPolicy(retry_budget=2),
        ).run()
        assert [row.to_dict() for row in recovered.rows] == \
            [row.to_dict() for row in clean.rows]

    def test_exhausted_retry_budget_is_an_explicit_failure(self, tmp_path):
        chaos = ChaosPolicy(seed=0, worker_crash_p=1.0,
                            max_crashes_per_site=3)
        runner = ReliabilityRunner(
            small_campaign(trials=1, bers=(0.0,)),
            cache=ResultCache(tmp_path / "cache"),
            chaos=chaos, supervisor=SupervisorPolicy(retry_budget=1),
        )
        with pytest.raises(WorkerCrashError, match="retry budget"):
            runner.run()


# -- resumable campaigns --------------------------------------------------------------


class TestResume:
    def test_interrupted_campaign_resumes_with_zero_recompute(
            self, tmp_path, monkeypatch):
        spec = small_campaign()
        total = len(spec)
        reference = ReliabilityRunner(
            spec, cache=ResultCache(tmp_path / "reference")
        ).run()

        cache = ResultCache(tmp_path / "interrupted")
        real_task = reliability_runner._evaluate_task
        evaluated: list = []
        interrupt_after = 2

        def interruptible(point):
            if len(evaluated) == interrupt_after:
                raise KeyboardInterrupt
            result = real_task(point)
            evaluated.append(point)
            return result

        monkeypatch.setattr(
            reliability_runner, "_evaluate_task", interruptible
        )
        first = ReliabilityRunner(spec, cache=cache)
        with pytest.raises(KeyboardInterrupt):
            first.run()
        state = first.journal().load()
        assert state.interrupted and not state.complete
        assert state.finished == interrupt_after
        assert len(state.remaining) == total - interrupt_after

        # Resume: only the unfinished points are evaluated; the two
        # finished ones are cache hits (zero recomputation).
        evaluated.clear()
        monkeypatch.setattr(reliability_runner, "_evaluate_task", real_task)
        second = ReliabilityRunner(spec, cache=cache)
        result = second.run()
        assert result.stats.cache_hits == interrupt_after
        assert result.stats.evaluated == total - interrupt_after
        final = second.journal().load()
        assert final.complete and not final.interrupted
        assert final.finished == final.total == total
        # And the stitched-together result is bit-identical to an
        # uninterrupted run.
        assert campaign_payload(result) == campaign_payload(reference)

    def test_warm_rerun_journals_as_complete(self, tmp_path):
        spec = small_campaign(trials=1, bers=(0.0, 1e-3))
        cache = ResultCache(tmp_path / "cache")
        ReliabilityRunner(spec, cache=cache).run()
        rerun = ReliabilityRunner(spec, cache=cache)
        result = rerun.run()
        assert result.stats.evaluated == 0
        state = rerun.journal().load()
        assert state.complete
        assert state.finished == state.total == len(spec)

    def test_journal_disabled_without_cache(self):
        runner = ReliabilityRunner(small_campaign(), cache=None)
        assert runner.journal_dir is None
        assert runner.journal() is None


# -- CLI interrupt contract -----------------------------------------------------------


class TestCliInterrupt:
    def test_reliability_cli_exits_130_with_resume_hint(
            self, tmp_path, monkeypatch, capsys):
        from repro.reliability.__main__ import main as reliability_main

        monkeypatch.setattr(
            ReliabilityRunner, "run",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        argv = ["cells", "--quality", QUALITY, "--trials", "1",
                "--sample-images", "2", "--cache-dir", str(tmp_path)]
        assert reliability_main(argv) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "python -m repro.reliability" in err and "--resume" in err

    def test_sweep_cli_exits_130_with_resume_hint(
            self, tmp_path, monkeypatch, capsys):
        from repro.sweep.__main__ import main as sweep_main

        monkeypatch.setattr(
            SweepRunner, "run",
            lambda self: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        argv = ["vprech", "--quality", QUALITY, "--sample-images", "2",
                "--cache-dir", str(tmp_path)]
        assert sweep_main(argv) == 130
        err = capsys.readouterr().err
        assert "python -m repro.sweep" in err and "--resume" in err

    def test_resume_flag_requires_cache(self, capsys):
        from repro.sweep.__main__ import main as sweep_main

        with pytest.raises(SystemExit):
            sweep_main(["vprech", "--resume", "--no-cache"])

    def test_resume_flag_reports_journal_state(self, tmp_path, capsys):
        from repro.reliability.__main__ import main as reliability_main

        argv = ["cells", "--quality", QUALITY, "--trials", "1",
                "--sample-images", "2", "--cache-dir", str(tmp_path)]
        assert reliability_main(argv) == 0
        capsys.readouterr()
        assert reliability_main([*argv, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "--resume: previous run completed" in out


# -- serving under chaos --------------------------------------------------------------


class TestServingChaosAccounting:
    def test_every_admitted_request_is_accounted(self):
        # Deadlines tight enough to shed under injected latency spikes,
        # a retry budget the persistent-failure sites defeat, and a
        # bounded queue under concurrent load: whatever combination of
        # fates the chaos schedule deals, nothing vanishes.
        chaos = ChaosPolicy(seed=13, flush_error_p=0.3,
                            latency_spike_ms=8.0, latency_spike_p=0.3)
        registry = ModelRegistry()
        network = random_network(seed=1)
        registry.register_network("m", network)
        server = InferenceServer(
            registry,
            policy=BatchPolicy(max_batch_size=8, max_wait_ms=1.0),
            max_queue_depth=32,
            retry=RetryPolicy(retries=1, base_delay_ms=0.0),
            chaos=chaos,
        )
        spikes = random_spikes(64)
        outcomes = {"completed": 0, "explicit_failure": 0}
        with server:
            futures = []
            for row in spikes:
                while True:
                    try:
                        futures.append(
                            server.submit("m", row, deadline_ms=200.0)
                        )
                        break
                    except QueueFullError:
                        pass
            for future in futures:
                try:
                    future.result(timeout=30.0)
                    outcomes["completed"] += 1
                except ReproError:
                    outcomes["explicit_failure"] += 1
        # 100% of admitted requests resolved or failed explicitly...
        assert outcomes["completed"] + outcomes["explicit_failure"] == \
            len(spikes)
        # ...and the metrics JSON agrees, with the resilience counters
        # present.
        data = server.metrics.to_dict()
        assert data["submitted"] == len(spikes)
        assert data["submitted"] == \
            data["completed"] + data["failed"] + data["shed"]
        assert data["completed"] == outcomes["completed"]
        for counter in ("shed", "retried", "broken_circuit"):
            assert counter in data
        # The chaos schedule must have actually interfered.
        assert data["retried"] > 0 or data["failed"] > 0

    def test_chaos_never_corrupts_served_predictions(self):
        # Whatever the failure pattern, every *successful* response is
        # bit-identical to the offline classification.
        chaos = ChaosPolicy(seed=29, flush_error_p=0.4)
        registry = ModelRegistry()
        network = random_network(seed=2)
        registry.register_network("m", network)
        server = InferenceServer(
            registry,
            policy=BatchPolicy(max_batch_size=8, max_wait_ms=0.5),
            retry=RetryPolicy(retries=1, base_delay_ms=0.0),
            chaos=chaos,
        )
        spikes = random_spikes(48, seed=9)
        offline = network.classify_batch(spikes)
        served = np.full(len(spikes), -1, dtype=np.int64)
        with server:
            futures = [server.submit("m", row) for row in spikes]
            for i, future in enumerate(futures):
                try:
                    served[i] = future.result(timeout=30.0)
                except ReproError:
                    pass
        answered = served >= 0
        assert answered.any()
        assert np.array_equal(served[answered], offline[answered])


# -- fleet under chaos ----------------------------------------------------------------


@pytest.mark.multiprocess
class TestFleetChaosAcceptance:
    """The fleet's claims, driven through real worker processes.

    Same acceptance bar as the in-process serving suite — bit-identical
    predictions, every request accounted — but across process
    boundaries, worker counts, and real ``os._exit`` crashes with
    supervised respawn.
    """

    def test_predictions_bit_identical_across_worker_counts(self):
        network = random_network(seed=4)
        spikes = random_spikes(96, seed=21)
        expected = network.classify_batch(spikes)
        for n_workers in (1, 2, 4):
            registry = ModelRegistry()
            registry.register_network("m", random_network(seed=4))
            server = FleetServer(
                registry, n_workers=n_workers,
                policy=BatchPolicy(max_batch_size=16, max_wait_ms=1.0),
            )
            with server:
                futures = [
                    server.submit("m", row, slo_class="batch")
                    for row in spikes
                ]
                served = np.array(
                    [f.result(timeout=60.0) for f in futures]
                )
            assert np.array_equal(served, expected), (
                f"{n_workers}-worker serving diverged from offline"
            )
            data = server.metrics.to_dict()
            assert data["submitted"] == len(spikes)
            assert data["submitted"] == \
                data["completed"] + data["failed"] + data["shed"]

    def test_mid_run_crash_and_respawn_stays_bit_identical(self):
        # A chaos schedule that genuinely kills workers mid-batch
        # (os._exit in the child): crashed batches fail explicitly,
        # every answered request is bit-identical to offline, and the
        # accounting invariant survives the respawns.
        chaos = ChaosPolicy(seed=11, worker_crash_p=0.15)
        registry = ModelRegistry()
        network = random_network(seed=5)
        registry.register_network("m", network)
        spikes = random_spikes(160, seed=23)
        offline = network.classify_batch(spikes)
        server = FleetServer(
            registry, n_workers=2, chaos=chaos,
            supervisor=SupervisorPolicy(retry_budget=64),
            policy=BatchPolicy(max_batch_size=8, max_wait_ms=1.0),
        )
        served = np.full(len(spikes), -1, dtype=np.int64)
        with server:
            futures = [
                server.submit("m", row, slo_class="batch")
                for row in spikes
            ]
            for i, future in enumerate(futures):
                try:
                    served[i] = future.result(timeout=60.0)
                except ReproError:
                    pass
        data = server.metrics.to_dict()
        # The schedule must have actually crashed workers...
        assert data["failed"] > 0
        respawns = sum(
            w["respawns"] for w in server.describe()["workers"]
        )
        assert respawns > 0
        # ...while nothing vanished and nothing was corrupted.
        assert data["submitted"] == len(spikes)
        assert data["submitted"] == \
            data["completed"] + data["failed"] + data["shed"]
        answered = served >= 0
        assert answered.any()
        assert np.array_equal(served[answered], offline[answered])
        # Crash-free rows on a respawned fleet: re-serving the failed
        # rows afterwards (fresh fleet, no chaos) completes them all,
        # bit-identically — nothing about a crash is sticky.
        failed_rows = ~answered
        if failed_rows.any():
            registry2 = ModelRegistry()
            registry2.register_network("m", random_network(seed=5))
            retry_server = FleetServer(
                registry2, n_workers=2,
                policy=BatchPolicy(max_batch_size=8, max_wait_ms=1.0),
            )
            with retry_server:
                futures = [
                    retry_server.submit("m", row, slo_class="batch")
                    for row in spikes[failed_rows]
                ]
                reserved = np.array(
                    [f.result(timeout=60.0) for f in futures]
                )
            assert np.array_equal(reserved, offline[failed_rows])
