"""Result store, pluggable executors and cache-hygiene fixes.

Four concerns share this suite because they share one contract — the
content-addressed cache is the durable truth and everything else
(store index, executors, journals) must agree with it:

* cache hygiene: corrupt entries are quarantined, stranded tmp files
  of hard-killed writers are garbage-collected, concurrent readers
  never observe a half-written entry;
* the SQLite store: ingest-on-put, idempotent backfill, filters,
  aggregation, CSV export, CLI and dashboard wiring;
* pluggable executors: the local pool keeps the historical shard_map
  semantics, the job-dir backend partitions work across independent
  claimant processes with bit-identical results;
* journal consistency: a journal without a cache is rejected, and an
  interrupted ``--no-cache`` run reports honestly that nothing was
  persisted.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib

import pytest

from repro.errors import ConfigurationError
from repro.store import (
    AXIS_COLUMNS,
    JobDirExecutor,
    LocalPoolExecutor,
    ResultStore,
    claim_work,
    flatten_scalars,
    make_executor,
    parse_filter,
    render_records,
    shard_map,
)
from repro.sweep.cache import ResultCache

pytestmark = pytest.mark.store

QUALITY = "fast"

_ROW = {
    "point": {"cell_type": "6T", "vprech": 0.5, "node": "3nm",
              "corner": "typical", "engine": "fast", "quality": QUALITY,
              "seed": 42, "sample_images": 4},
    "metrics": {"latency_ns": 12.5, "energy_pj": 640.0},
    "cached": False,
    "kind": "sweep",
    "fingerprint": "f" * 64,
}


def _key(n: int) -> str:
    return f"{n:02x}" * 32


def _put_n(cache: ResultCache, count: int, *, kind="sweep") -> list[str]:
    keys = []
    for n in range(count):
        row = json.loads(json.dumps(_ROW))
        row["kind"] = kind
        row["point"]["seed"] = n
        key = _key(n)
        cache.put(key, row)
        keys.append(key)
    return keys


# -- cache hygiene ---------------------------------------------------------------------


class TestCorruptEntryQuarantine:
    def test_truncated_json_is_quarantined_not_reread(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = _key(1)
        path = cache.put(key, dict(_ROW))
        # A torn write that still got renamed: valid prefix, cut off.
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        assert cache.get(key) is None
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists() and not path.exists()
        # The key now simply misses; nothing re-reads the garbage.
        assert cache.get(key) is None
        assert key not in cache

    def test_quarantined_entry_invisible_to_backfill(self, tmp_path,
                                                     result_store):
        cache = ResultCache(tmp_path / "cache")
        keys = _put_n(cache, 3)
        path = cache.path(keys[0])
        path.write_text("{\"point\": {")
        assert cache.get(keys[0]) is None  # quarantines
        assert result_store.backfill(cache.root) == 2

    def test_missing_and_healthy_entries_unaffected(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(_key(9)) is None
        key = _key(2)
        cache.put(key, dict(_ROW))
        assert cache.get(key) == _ROW


class TestStaleTmpGc:
    @staticmethod
    def _strand_tmp(cache: ResultCache, *, age_s: float,
                    name: str = "stranded") -> pathlib.Path:
        """Plant a tmp file as a hard-killed writer would leave it."""
        sub = cache.root / "ab"
        sub.mkdir(parents=True, exist_ok=True)
        tmp = sub / f"abcdef12.{name}.tmp"
        tmp.write_text("{\"half\": ")
        old = os.stat(tmp).st_mtime - age_s
        os.utime(tmp, (old, old))
        return tmp

    def test_explicit_gc_removes_only_stale(self, tmp_path):
        cache = ResultCache(tmp_path, tmp_max_age_s=None)
        stale = self._strand_tmp(cache, age_s=7200.0)
        fresh = self._strand_tmp(cache, age_s=0.0, name="fresh")

        assert cache.gc_stale_tmp(max_age_s=3600.0) == 1
        assert not stale.exists()
        assert fresh.exists()  # a live writer's in-flight file survives

    def test_gc_runs_on_cache_open(self, tmp_path):
        setup = ResultCache(tmp_path, tmp_max_age_s=None)
        stale = self._strand_tmp(setup, age_s=7200.0)

        ResultCache(tmp_path)  # default tmp_max_age_s sweeps on open
        assert not stale.exists()

    def test_open_gc_can_be_disabled(self, tmp_path):
        setup = ResultCache(tmp_path, tmp_max_age_s=None)
        stale = self._strand_tmp(setup, age_s=7200.0)

        ResultCache(tmp_path, tmp_max_age_s=None)
        assert stale.exists()

    def test_injected_clock_controls_the_cutoff(self, tmp_path):
        cache = ResultCache(tmp_path, tmp_max_age_s=None)
        tmp = self._strand_tmp(cache, age_s=0.0)
        far_future = os.stat(tmp).st_mtime + 10_000.0
        assert cache.gc_stale_tmp(max_age_s=3600.0,
                                  clock=lambda: far_future) == 1

    def test_torn_writer_leaves_no_entry_and_gc_reclaims(self, tmp_path):
        # A writer hard-killed mid-put: tmp exists, entry does not.
        cache = ResultCache(tmp_path, tmp_max_age_s=None)
        self._strand_tmp(cache, age_s=7200.0)
        assert len(cache) == 0
        assert cache.gc_stale_tmp() == 1
        assert list(cache.root.glob("*/*.tmp")) == []

    def test_gc_cli(self, tmp_path, capsys):
        from repro.store.__main__ import main as store_main

        cache = ResultCache(tmp_path, tmp_max_age_s=None)
        self._strand_tmp(cache, age_s=7200.0)
        assert store_main(["gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert list(tmp_path.glob("*/*.tmp")) == []


def _hammer_puts(root: str, key: str, row: dict, rounds: int) -> None:
    """Writer-process body: overwrite one key as fast as possible."""
    cache = ResultCache(root, tmp_max_age_s=None)
    for _ in range(rounds):
        cache.put(key, row)


@pytest.mark.multiprocess
class TestConcurrentSameKey:
    def test_reader_never_sees_partial_entry(self, tmp_path):
        key = _key(7)
        row = {**_ROW, "metrics": {"latency_ns": 1.0,
                                   "payload": "x" * 65536}}
        cache = ResultCache(tmp_path, tmp_max_age_s=None)
        writer = multiprocessing.Process(
            target=_hammer_puts, args=(str(tmp_path), key, row, 150),
        )
        writer.start()
        observed = 0
        try:
            for _ in range(200_000):
                got = cache.get(key)
                if got is not None:
                    assert got == row  # complete or absent, never torn
                    observed += 1
                if not writer.is_alive() and observed > 0:
                    break
        finally:
            writer.join(timeout=30.0)
        assert writer.exitcode == 0
        assert observed > 0
        assert cache.get(key) == row


# -- the SQLite store ------------------------------------------------------------------


class TestFlattenAndFilters:
    def test_flatten_scalars_dotted_and_derived(self):
        scalars = flatten_scalars({
            "point": {"ignored": 1}, "kind": "sweep", "cached": True,
            "metrics": {"latency_ns": 2.0, "nested": {"deep": 3}},
            "accuracies": [0.5, 1.0, 0.75],
            "labels": ["a", "b"],        # non-numeric list: skipped
            "ok": True,                   # bool: skipped
            "count": 4,
        })
        assert scalars == {
            "metrics.latency_ns": 2.0, "metrics.nested.deep": 3.0,
            "accuracies.mean": 0.75, "accuracies.min": 0.5,
            "accuracies.max": 1.0, "count": 4.0,
        }

    def test_parse_filter_aliases_and_coercion(self):
        assert parse_filter("cell=6T, ber=5e-2 ,seed=7,node=3nm") == {
            "cell_type": "6T", "bit_error_rate": 0.05, "seed": 7,
            "node": "3nm",
        }
        assert parse_filter("") == {}
        with pytest.raises(ConfigurationError, match="axis=value"):
            parse_filter("cell")


class TestStoreIndex:
    def test_ingest_on_put_is_incremental(self, tmp_path, result_store):
        cache = ResultCache(tmp_path / "cache", store=result_store)
        keys = _put_n(cache, 2)
        records = result_store.filter(kind="sweep")
        assert [r.cache_key for r in records] and len(records) == 2
        assert {r.cache_key for r in records} == set(keys)
        record = records[0]
        assert record.scalars["metrics.latency_ns"] == 12.5
        assert record.fingerprint == "f" * 64
        assert record.axis("cell") == "6T"

    def test_backfill_is_idempotent(self, tmp_path, result_store):
        cache = ResultCache(tmp_path / "cache")  # no store attached
        _put_n(cache, 4)
        assert result_store.backfill(cache.root) == 4
        assert result_store.backfill(cache.root) == 0  # double: zero rows
        assert len(result_store) == 4

    def test_reingest_same_key_replaces_not_duplicates(self, tmp_path,
                                                       result_store):
        cache = ResultCache(tmp_path / "cache", store=result_store)
        key = _put_n(cache, 1)[0]
        cache.put(key, dict(_ROW))
        assert len(result_store) == 1

    def test_pre_store_rows_get_kind_inferred(self, result_store, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        legacy = {k: v for k, v in _ROW.items()
                  if k not in ("kind", "fingerprint")}
        cache.put(_key(3), legacy)
        assert result_store.backfill(cache.root) == 1
        (record,) = result_store.filter()
        assert record.kind == "sweep"  # shape-based fallback
        assert record.fingerprint is None

    def test_filter_rejects_unknown_axis(self, result_store):
        with pytest.raises(ConfigurationError, match="unknown"):
            result_store.filter(flavour="salty")

    def test_aggregate_and_csv(self, tmp_path, result_store):
        cache = ResultCache(tmp_path / "cache", store=result_store)
        _put_n(cache, 3)
        groups = result_store.aggregate("metrics.latency_ns",
                                        by=("cell_type",))
        ((group, fold),) = groups.items()
        assert group == ("6T",)
        assert (fold.n, fold.mean) == (3, 12.5)

        out = result_store.to_csv(tmp_path / "rows.csv", kind="sweep")
        header, *rows = out.read_text().splitlines()
        assert header.startswith("cache_key,created_s," +
                                 ",".join(AXIS_COLUMNS))
        assert len(rows) == 3

    def test_schema_mismatch_rebuilds_the_index(self, tmp_path):
        path = tmp_path / "store.sqlite"
        with ResultStore(path) as store:
            store.ingest(_key(1), dict(_ROW))
            store._conn.execute("PRAGMA user_version = 999")
            store._conn.commit()
        with ResultStore(path) as reopened:
            assert len(reopened) == 0  # only an index: dropped, rebuilt

    def test_render_records(self, tmp_path, result_store):
        cache = ResultCache(tmp_path / "cache", store=result_store)
        _put_n(cache, 1)
        text = render_records(result_store.filter())
        assert "metrics.latency_ns" in text and "1 row" in text
        assert render_records([]) == "store: no matching rows"


# -- executors -------------------------------------------------------------------------


def _double(value: int) -> float:
    return value * 2.0


def _fragile(value: int) -> float:
    if value == 2:
        raise ValueError("payload 2 is cursed")
    return value * 2.0


class TestLocalPoolExecutor:
    def test_matches_shard_map_exactly(self):
        payloads = list(range(6))
        pool = LocalPoolExecutor(1)
        assert pool.map(_double, payloads) == shard_map(_double, payloads, 1)
        assert not pool.uses_processes
        assert LocalPoolExecutor(3).uses_processes

    def test_on_done_fires_per_payload(self):
        seen = {}
        LocalPoolExecutor(1).map(
            _double, [3, 4], on_done=lambda i, r: seen.__setitem__(i, r)
        )
        assert seen == {0: 6.0, 1: 8.0}

    def test_make_executor_registry(self, tmp_path):
        assert make_executor("local-pool", n_workers=2).n_workers == 2
        job = make_executor("job-dir", n_workers=3,
                            job_dir=tmp_path / "jobs")
        assert job.n_claimants == 3
        with pytest.raises(ConfigurationError, match="job-dir"):
            make_executor("local-pool", job_dir=tmp_path)
        with pytest.raises(ConfigurationError, match="--job-dir"):
            make_executor("job-dir")
        with pytest.raises(ConfigurationError, match="unknown"):
            make_executor("carrier-pigeon")


@pytest.mark.multiprocess
class TestJobDirExecutor:
    def test_two_claimants_match_local_pool_bit_for_bit(self, tmp_path):
        payloads = list(range(10))
        expected = LocalPoolExecutor(1).map(_double, payloads)
        done: dict[int, float] = {}
        got = JobDirExecutor(tmp_path / "jobs", n_claimants=2).map(
            _double, payloads,
            on_done=lambda i, r: done.__setitem__(i, r),
        )
        assert got == expected  # input order, bit-identical
        assert done == dict(enumerate(expected))
        assert (tmp_path / "jobs" / "CLOSED").exists()

    def test_task_error_propagates_to_coordinator(self, tmp_path):
        with pytest.raises(ValueError, match="cursed"):
            JobDirExecutor(tmp_path / "jobs", n_claimants=2).map(
                _fragile, list(range(5))
            )

    def test_refuses_unfinished_dir_but_reuses_closed_one(self, tmp_path):
        jobs = tmp_path / "jobs"
        executor = JobDirExecutor(jobs, n_claimants=1)
        assert executor.map(_double, [1, 2]) == [2.0, 4.0]
        # CLOSED proves clean completion: the dir is reset and reused.
        assert executor.map(_double, [5]) == [10.0]
        # Simulate an unfinished run: task.pkl present, CLOSED missing.
        (jobs / "CLOSED").unlink()
        with pytest.raises(ConfigurationError, match="unfinished"):
            JobDirExecutor(jobs, n_claimants=1).map(_double, [1])

    def test_claim_work_requires_seeded_dir(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ConfigurationError, match="task.pkl"):
            claim_work(tmp_path / "empty")

    def test_external_claimants_partition_the_work(self, tmp_path):
        # Two independent claimant processes (what `python -m
        # repro.store work` runs) drain a seeded dir with no
        # coordinator-spawned workers at all.
        jobs = tmp_path / "jobs"
        payloads = list(range(8))
        executor = JobDirExecutor(jobs, n_claimants=0)
        executor._prepare(_double, None, payloads)
        claimants = [
            multiprocessing.Process(target=claim_work, args=(str(jobs),))
            for _ in range(2)
        ]
        for process in claimants:
            process.start()
        for process in claimants:
            process.join(timeout=60.0)
            assert process.exitcode == 0
        results_dir = jobs / "results"
        assert len(os.listdir(results_dir)) == len(payloads)
        from repro.store.executors import _load_pickle

        got = [
            _load_pickle(results_dir / f"{index:06d}.result")
            for index in range(len(payloads))
        ]
        assert got == [("ok", value) for value in
                       LocalPoolExecutor(1).map(_double, payloads)]


# -- journal consistency ---------------------------------------------------------------


class TestJournalConsistency:
    def test_run_cached_points_rejects_journal_without_cache(self, tmp_path):
        from repro.sweep.runner import run_cached_points

        with pytest.raises(ConfigurationError, match="journal"):
            run_cached_points(
                [1], cache=None, key_fn=None,
                load_row=lambda d: d, dump_row=lambda r: r,
                evaluate=lambda points: points,
                journal_dir=tmp_path / "journal",
            )

    def test_sweep_cli_rejects_resume_without_cache(self):
        from repro.sweep.__main__ import main as sweep_main

        with pytest.raises(SystemExit):
            sweep_main(["vprech", "--resume", "--no-cache"])

    def test_reliability_cli_rejects_resume_without_cache(self):
        from repro.reliability.__main__ import main as reliability_main

        with pytest.raises(SystemExit):
            reliability_main(["--resume", "--no-cache"])

    def test_query_needs_the_cache(self):
        from repro.reliability.__main__ import main as reliability_main
        from repro.sweep.__main__ import main as sweep_main

        with pytest.raises(SystemExit):
            sweep_main(["--query", "", "--no-cache"])
        with pytest.raises(SystemExit):
            reliability_main(["--query", "", "--no-cache"])

    def test_interrupt_message_is_honest_about_no_cache(self, capsys):
        from repro.resilience.cli import SIGINT_EXIT, print_interrupted

        assert print_interrupted("python -m repro.sweep", ["vprech"],
                                 cached=False) == SIGINT_EXIT
        err = capsys.readouterr().err
        assert "NOT persisted" in err
        assert "--resume" not in err  # no lying resume hint

        assert print_interrupted("python -m repro.sweep", ["vprech"],
                                 cached=True) == SIGINT_EXIT
        err = capsys.readouterr().err
        assert "committed to the cache" in err and "--resume" in err


# -- CLI and dashboard wiring (small real campaigns) -----------------------------------


def _count_calls(monkeypatch, module, name):
    """Replace ``module.name`` with a counting wrapper; returns counter."""
    calls = []
    original = getattr(module, name)

    def wrapper(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(module, name, wrapper)
    return calls


@pytest.mark.slow
class TestCampaignStoreAcceptance:
    def test_sweep_query_answers_with_zero_reevaluation(
            self, tmp_path, monkeypatch, capsys):
        import repro.sweep.runner as sweep_runner
        from repro.sweep.__main__ import main as sweep_main

        argv = ["vprech", "--quality", QUALITY, "--sample-images", "2",
                "--cache-dir", str(tmp_path)]
        assert sweep_main(argv) == 0
        assert (tmp_path / "store.sqlite").exists()
        capsys.readouterr()

        calls = _count_calls(monkeypatch, sweep_runner, "evaluate_point")
        assert sweep_main(["--query", "vprech=0.6", "--cache-dir",
                           str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 row" in out and "metrics." in out
        assert calls == []  # zero point re-evaluation

    def test_reliability_query_answers_with_zero_reevaluation(
            self, tmp_path, monkeypatch, capsys):
        import repro.reliability.runner as reliability_runner
        from repro.reliability.__main__ import main as reliability_main

        argv = ["cells", "--quality", QUALITY, "--trials", "1",
                "--sample-images", "2", "--bers", "0,5e-2",
                "--cache-dir", str(tmp_path)]
        assert reliability_main(argv) == 0
        capsys.readouterr()

        calls = _count_calls(monkeypatch, reliability_runner,
                             "evaluate_fault_point")
        assert reliability_main(["--query", "ber=5e-2", "--cache-dir",
                                 str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "accuracies.mean" in out and "rows" in out
        assert calls == []  # zero point re-evaluation

    def test_no_store_runs_become_queryable_via_backfill(
            self, tmp_path, capsys):
        from repro.sweep.__main__ import main as sweep_main

        argv = ["vprech", "--quality", QUALITY, "--sample-images", "2",
                "--cache-dir", str(tmp_path), "--no-store"]
        assert sweep_main(argv) == 0
        assert not (tmp_path / "store.sqlite").exists()
        capsys.readouterr()
        # --query backfills the fresh index from the cache dir.
        assert sweep_main(["--query", "", "--cache-dir",
                           str(tmp_path)]) == 0
        assert "4 rows" in capsys.readouterr().out

    def test_store_cli_query_aggregate_and_csv(self, tmp_path, capsys):
        from repro.store.__main__ import main as store_main
        from repro.sweep.__main__ import main as sweep_main

        cache_dir = tmp_path / "cache"
        assert sweep_main(["vprech", "--quality", QUALITY,
                           "--sample-images", "2",
                           "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()

        assert store_main(["query", "--cache-dir", str(cache_dir),
                           "--where", "vprech=0.5"]) == 0
        assert "1 row" in capsys.readouterr().out

        assert store_main(["query", "--cache-dir", str(cache_dir),
                           "--aggregate", "metrics.area_um2",
                           "--by", "cell"]) == 0
        assert "mean=" in capsys.readouterr().out

        csv_path = tmp_path / "rows.csv"
        assert store_main(["query", "--cache-dir", str(cache_dir),
                           "--csv", str(csv_path)]) == 0
        assert csv_path.exists()
        assert len(csv_path.read_text().splitlines()) == 5  # header + 4

    def test_runner_rows_identical_across_executors(self, tmp_path):
        from repro.sram.bitcell import CellType
        from repro.sweep import SweepRunner, SweepSpec

        spec = SweepSpec(
            name="xcheck", cell_types=(CellType.C6T, CellType.C1RW4R),
            sample_images=(2,), quality=QUALITY,
        )
        local = SweepRunner(
            spec, n_workers=1, cache=ResultCache(tmp_path / "a")
        ).run()
        stolen = SweepRunner(
            spec, cache=ResultCache(tmp_path / "b"),
            executor=JobDirExecutor(tmp_path / "jobs", n_claimants=2),
        ).run()
        assert stolen.rows == local.rows  # bit-identical across backends

        def payloads(root):
            return sorted(
                (path.name, path.read_text())
                for path in pathlib.Path(root).glob("*/*.json")
            )

        assert payloads(tmp_path / "a") == payloads(tmp_path / "b")

    def test_obs_report_gains_campaign_history(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main
        from repro.sweep.__main__ import main as sweep_main

        cache_dir = tmp_path / "cache"
        assert sweep_main(["vprech", "--quality", QUALITY,
                           "--sample-images", "2",
                           "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        out = tmp_path / "report.html"
        assert obs_main(["report", "--out", str(out),
                         "--bench-dir", str(tmp_path),
                         "--store", str(cache_dir / "store.sqlite")]) == 0
        html = out.read_text()
        assert "Campaign history" in html
        assert "indexed campaign points" in html

    def test_obs_report_rejects_missing_store(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        code = obs_main(["report", "--out", str(tmp_path / "r.html"),
                         "--bench-dir", str(tmp_path),
                         "--store", str(tmp_path / "nope.sqlite")])
        assert code == 1
        assert "does not exist" in capsys.readouterr().err
