"""Functional binary-SNN reference model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.model import BinarySNN


@pytest.fixture()
def tiny_model(rng) -> BinarySNN:
    w1 = rng.integers(0, 2, (16, 8)).astype(np.uint8)
    w2 = rng.integers(0, 2, (8, 4)).astype(np.uint8)
    return BinarySNN(
        [w1, w2],
        [rng.integers(-3, 5, 8), np.full(4, 100)],
        output_bias=np.array([0.5, -0.5, 1.0, 0.0]),
    )


class TestMembranePotentials:
    def test_plus_minus_one_semantics(self):
        """w=1 contributes +1, w=0 contributes -1, silent inputs nothing."""
        w = np.array([[1], [0], [1]], dtype=np.uint8)
        model = BinarySNN([w], [np.zeros(1)])
        vmem = model.membrane_potentials(np.array([1, 1, 0]), layer=0)
        assert vmem[0, 0] == 0  # +1 - 1 + nothing

    def test_all_inputs_firing(self):
        w = np.array([[1], [1], [0]], dtype=np.uint8)
        model = BinarySNN([w], [np.zeros(1)])
        assert model.membrane_potentials(np.ones(3), 0)[0, 0] == 1


class TestForward:
    def test_output_shape(self, tiny_model, rng):
        x = rng.integers(0, 2, (5, 16))
        assert tiny_model.forward(x).shape == (5, 4)

    def test_bias_applied(self, rng):
        w = rng.integers(0, 2, (8, 3)).astype(np.uint8)
        bias = np.array([10.0, 0.0, -10.0])
        with_bias = BinarySNN([w], [np.zeros(3)], output_bias=bias)
        without = BinarySNN([w], [np.zeros(3)])
        x = rng.integers(0, 2, (2, 8))
        assert np.allclose(with_bias.forward(x), without.forward(x) + bias)

    def test_activity_returned(self, tiny_model, rng):
        x = rng.integers(0, 2, (4, 16))
        _, activity = tiny_model.forward(x, return_activity=True)
        # One spike matrix per tile input: the image and the hidden layer.
        assert len(activity) == 2
        assert activity[0].shape == (4, 16)
        assert activity[1].shape == (4, 8)

    def test_spike_counts(self, tiny_model, rng):
        x = rng.integers(0, 2, (10, 16))
        counts = tiny_model.spike_counts(x)
        assert counts.shape == (2,)
        assert counts[0] == pytest.approx(x.sum(axis=1).mean())

    def test_classify(self, tiny_model, rng):
        x = rng.integers(0, 2, (6, 16))
        preds = tiny_model.classify(x)
        assert (preds == np.argmax(tiny_model.forward(x), axis=1)).all()

    def test_input_width_checked(self, tiny_model):
        with pytest.raises(ConfigurationError):
            tiny_model.forward(np.zeros((2, 8)))


class TestValidation:
    def test_rejects_non_binary_weights(self):
        with pytest.raises(ConfigurationError):
            BinarySNN([np.full((4, 2), 2)], [np.zeros(2)])

    def test_rejects_threshold_mismatch(self, rng):
        w = rng.integers(0, 2, (4, 2)).astype(np.uint8)
        with pytest.raises(ConfigurationError):
            BinarySNN([w], [np.zeros(3)])

    def test_rejects_layer_mismatch(self, rng):
        w1 = rng.integers(0, 2, (4, 2)).astype(np.uint8)
        w2 = rng.integers(0, 2, (3, 2)).astype(np.uint8)
        with pytest.raises(ConfigurationError):
            BinarySNN([w1, w2], [np.zeros(2), np.zeros(2)])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BinarySNN([], [])
