"""Stochastic 1-bit STDP rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.learning.stdp import StochasticSTDP


class TestUpdateColumn:
    def test_output_binary(self, rng):
        rule = StochasticSTDP(seed=1)
        w = rng.integers(0, 2, 64)
        new = rule.update_column(w, rng.integers(0, 2, 64))
        assert set(np.unique(new)).issubset({0, 1})

    def test_deterministic_probabilities(self):
        """p=1 rules are deterministic: potentiate where pre fired,
        depress where silent."""
        rule = StochasticSTDP(p_potentiate=1.0, p_depress=1.0, seed=2)
        w = np.array([0, 0, 1, 1], dtype=np.uint8)
        pre = np.array([1, 0, 1, 0], dtype=np.uint8)
        new = rule.update_column(w, pre)
        assert new.tolist() == [1, 0, 1, 0]

    def test_zero_probability_is_identity(self, rng):
        rule = StochasticSTDP(p_potentiate=0.0, p_depress=0.0, seed=3)
        w = rng.integers(0, 2, 32)
        assert (rule.update_column(w, rng.integers(0, 2, 32)) == w).all()

    def test_does_not_mutate_input(self, rng):
        rule = StochasticSTDP(p_potentiate=1.0, p_depress=1.0)
        w = np.zeros(16, dtype=np.uint8)
        rule.update_column(w, np.ones(16))
        assert (w == 0).all()

    def test_shape_mismatch_rejected(self):
        rule = StochasticSTDP()
        with pytest.raises(ConfigurationError):
            rule.update_column(np.zeros(8), np.zeros(4))

    def test_non_binary_weights_rejected(self):
        rule = StochasticSTDP()
        with pytest.raises(ConfigurationError):
            rule.update_column(np.full(8, 2), np.zeros(8))


class TestStationaryDistribution:
    @pytest.mark.parametrize("correlation", [0.2, 0.5, 0.8])
    def test_converges_to_expected_weight(self, correlation):
        """Empirical stationary E[w] tracks the analytic prediction."""
        rule = StochasticSTDP(p_potentiate=0.3, p_depress=0.15, seed=5)
        sampler = np.random.default_rng(6)
        n = 2000
        w = np.zeros(n, dtype=np.uint8)
        for _ in range(200):
            pre = (sampler.random(n) < correlation).astype(np.uint8)
            w = rule.update_column(w, pre)
        expected = rule.expected_weight(correlation)
        assert w.mean() == pytest.approx(expected, abs=0.05)

    def test_expected_weight_monotonic(self):
        rule = StochasticSTDP(p_potentiate=0.2, p_depress=0.1)
        values = [rule.expected_weight(c) for c in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_expected_weight_extremes(self):
        rule = StochasticSTDP(p_potentiate=0.2, p_depress=0.1)
        assert rule.expected_weight(0.0) == 0.0
        assert rule.expected_weight(1.0) == 1.0


class TestProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_updates_respect_pre_direction(self, seed):
        """Weights only flip up where pre fired, only down where silent."""
        rng = np.random.default_rng(seed)
        rule = StochasticSTDP(p_potentiate=0.5, p_depress=0.5, seed=seed)
        w = rng.integers(0, 2, 64).astype(np.uint8)
        pre = rng.integers(0, 2, 64).astype(np.uint8)
        new = rule.update_column(w, pre)
        flipped_up = (new == 1) & (w == 0)
        flipped_down = (new == 0) & (w == 1)
        assert not (flipped_up & (pre == 0)).any()
        assert not (flipped_down & (pre == 1)).any()


class TestValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            StochasticSTDP(p_potentiate=1.5)
        with pytest.raises(ConfigurationError):
            StochasticSTDP(p_depress=-0.1)

    def test_rejects_bad_correlation(self):
        with pytest.raises(ConfigurationError):
            StochasticSTDP().expected_weight(2.0)
