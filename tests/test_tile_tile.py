"""Cycle-accurate tile: correctness against matrix arithmetic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sram.bitcell import ALL_CELLS, CellType
from repro.tile.tile import Tile


def reference_outputs(weights: np.ndarray, thresholds: np.ndarray,
                      spikes: np.ndarray) -> np.ndarray:
    """Ground truth: Vmem = spikes @ (2W - 1); fire iff Vmem >= Vth."""
    vmem = spikes.astype(np.int64) @ (2 * weights.astype(np.int64) - 1)
    return vmem >= thresholds


@pytest.fixture()
def small_tile(rng) -> Tile:
    w = rng.integers(0, 2, (256, 128)).astype(np.uint8)
    th = rng.integers(-10, 25, 128)
    return Tile(w, th, cell_type=CellType.C1RW4R)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("cell", ALL_CELLS)
    def test_matches_matrix_math(self, cell, rng):
        w = rng.integers(0, 2, (256, 96)).astype(np.uint8)
        th = rng.integers(-5, 20, 96)
        tile = Tile(w, th, cell_type=cell)
        spikes = rng.random(256) < 0.3
        out = tile.run_inference(spikes)
        assert (out == reference_outputs(w, th, spikes)).all()

    def test_multiple_inferences(self, small_tile, rng):
        w = small_tile.weight_matrix()
        th = np.concatenate(
            [n.thresholds for n in small_tile.neurons]
        )[: small_tile.n_out]
        for _ in range(5):
            spikes = rng.random(256) < 0.4
            out = small_tile.run_inference(spikes)
            assert (out == reference_outputs(w, th, spikes)).all()

    def test_readout_returns_vmem(self, rng):
        w = rng.integers(0, 2, (128, 10)).astype(np.uint8)
        th = np.full(10, 511)
        tile = Tile(w, th, cell_type=CellType.C1RW2R)
        spikes = rng.random(128) < 0.5
        vmem = tile.run_inference(spikes, readout=True)
        expected = spikes.astype(np.int64) @ (2 * w.astype(np.int64) - 1)
        assert (vmem == expected).all()

    def test_zero_spikes(self, small_tile):
        out = small_tile.run_inference(np.zeros(256, dtype=bool))
        th = np.concatenate([n.thresholds for n in small_tile.neurons])[:128]
        assert (out == (0 >= th)).all()


class TestCycleCounts:
    def test_cycles_bounded_by_spikes_over_ports(self, rng):
        """Per row block: ceil(spikes_in_block / ports) cycles."""
        w = rng.integers(0, 2, (256, 64)).astype(np.uint8)
        tile = Tile(w, np.zeros(64), cell_type=CellType.C1RW4R)
        spikes = np.zeros(256, dtype=bool)
        spikes[:16] = True   # 16 spikes in row block 0 only
        tile.run_inference(spikes)
        assert tile.stats.cycles == 4  # 16 / 4 ports
        assert tile.stats.fire_cycles == 1

    def test_single_port_serialises(self, rng):
        w = rng.integers(0, 2, (128, 64)).astype(np.uint8)
        tile = Tile(w, np.zeros(64), cell_type=CellType.C6T)
        spikes = np.zeros(128, dtype=bool)
        spikes[:10] = True
        tile.run_inference(spikes)
        assert tile.stats.cycles == 10

    def test_row_blocks_work_in_parallel(self, rng):
        """Two arbiters grant simultaneously: 2 x p spikes per cycle."""
        w = rng.integers(0, 2, (256, 64)).astype(np.uint8)
        tile = Tile(w, np.zeros(64), cell_type=CellType.C1RW4R)
        spikes = np.zeros(256, dtype=bool)
        spikes[:8] = True      # block 0
        spikes[128:136] = True  # block 1
        tile.run_inference(spikes)
        assert tile.stats.cycles == 2
        assert tile.stats.grants == 16

    def test_array_reads_count_column_blocks(self, rng):
        w = rng.integers(0, 2, (128, 256)).astype(np.uint8)  # 2 col blocks
        tile = Tile(w, np.zeros(256), cell_type=CellType.C1RW4R)
        spikes = np.zeros(128, dtype=bool)
        spikes[:4] = True
        tile.run_inference(spikes)
        assert tile.stats.array_reads == 8  # 4 spikes x 2 column blocks


class TestEnergyAccounting:
    def test_dynamic_energy_accumulates(self, small_tile, rng):
        small_tile.run_inference(rng.random(256) < 0.4)
        assert small_tile.dynamic_energy_pj() > 0.0

    def test_reset_stats(self, small_tile, rng):
        small_tile.run_inference(rng.random(256) < 0.4)
        small_tile.reset_stats()
        assert small_tile.stats.cycles == 0
        assert small_tile.dynamic_energy_pj() == 0.0

    def test_leakage_grows_with_cell(self, rng):
        w = rng.integers(0, 2, (128, 128)).astype(np.uint8)
        t1 = Tile(w, np.zeros(128), cell_type=CellType.C1RW1R)
        t4 = Tile(w, np.zeros(128), cell_type=CellType.C1RW4R)
        assert t4.leakage_power_mw() > t1.leakage_power_mw()

    def test_area_grows_with_cell(self, rng):
        w = rng.integers(0, 2, (128, 128)).astype(np.uint8)
        t6 = Tile(w, np.zeros(128), cell_type=CellType.C6T)
        t4 = Tile(w, np.zeros(128), cell_type=CellType.C1RW4R)
        assert t4.area_um2() > 1.5 * t6.area_um2()


class TestStructure:
    def test_macro_for_neuron(self, rng):
        w = rng.integers(0, 2, (256, 200)).astype(np.uint8)
        tile = Tile(w, np.zeros(200), cell_type=CellType.C1RW2R)
        macro, col = tile.macro_for_neuron(130, row_block=1)
        assert col == 2
        assert macro is tile.macros[1][1]

    def test_macro_for_neuron_range_checked(self, small_tile):
        with pytest.raises(ConfigurationError):
            small_tile.macro_for_neuron(500, 0)

    def test_weight_matrix_roundtrip(self, rng):
        w = rng.integers(0, 2, (300, 140)).astype(np.uint8)
        tile = Tile(w, np.zeros(140), cell_type=CellType.C1RW3R)
        assert (tile.weight_matrix() == w).all()

    def test_fire_before_drain_rejected(self, small_tile, rng):
        small_tile.submit_spikes(rng.random(256) < 0.5)
        with pytest.raises(SimulationError):
            small_tile.fire()

    def test_spike_shape_checked(self, small_tile):
        with pytest.raises(ConfigurationError):
            small_tile.submit_spikes(np.zeros(100, dtype=bool))

    def test_threshold_shape_checked(self, rng):
        with pytest.raises(ConfigurationError):
            Tile(rng.integers(0, 2, (64, 32)), np.zeros(16))
