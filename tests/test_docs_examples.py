"""Documentation cannot rot: execute every python block in the docs.

Extracts the fenced ```python code blocks from README.md and
``docs/*.md`` and executes them top to bottom.  Blocks within one file
share a namespace, so a guide can build state progressively the way a
reader would type it.  A snippet that raises fails this suite — which
means any API drift breaks CI instead of silently stranding the docs.

Conventions for doc authors:

* fence runnable snippets as ```python — they must be self-contained
  per *file* (earlier blocks in the same file are visible);
* fence non-python or non-runnable material as ```text, ```bash, etc.;
* keep snippets fast: quality="fast" models and small sample sizes.
"""

from __future__ import annotations

import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Every documentation file whose python blocks must execute.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md")),
    key=lambda p: p.name,
)

_PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def extract_python_blocks(path: pathlib.Path) -> list[str]:
    """The fenced ```python blocks of one markdown file, in order."""
    return [m.group(1) for m in _PYTHON_BLOCK.finditer(path.read_text())]


def test_documentation_suite_exists():
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    assert (REPO_ROOT / "docs" / "sweep.md").exists()
    assert (REPO_ROOT / "docs" / "reliability.md").exists()
    assert len(DOC_FILES) >= 4


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[p.name for p in DOC_FILES],
)
def test_doc_python_blocks_execute(doc, tmp_path, monkeypatch):
    blocks = extract_python_blocks(doc)
    assert blocks, f"{doc.name} has no runnable ```python blocks"
    # Snippets that write files do so relative to a scratch directory.
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": f"docs_{doc.stem}"}
    for index, block in enumerate(blocks):
        code = compile(block, f"{doc.name}[block {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs
