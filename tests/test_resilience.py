"""Resilience primitives: retry policy, circuit breaker, chaos, journal.

The execution-layer failure handling rests on two determinism claims:
a :class:`RetryPolicy`'s backoff schedule is a pure function of its
seed (hypothesis pins this across the parameter space), and a
:class:`ChaosPolicy`'s fault schedule is a pure hash of
``(seed, site, attempt)`` with per-site crash counts capped — which is
what makes supervised retry provably convergent.  The circuit breaker
and journal tests drive the full state machines with injected clocks
and tmp files.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, InjectedFaultError, WorkerCrashError
from repro.resilience import (
    TRANSIENT_ERRORS,
    BreakerPolicy,
    CampaignJournal,
    ChaosPolicy,
    CircuitBreaker,
    JournalState,
    RetryPolicy,
    SupervisorPolicy,
    run_id_for,
)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


# -- retry policy --------------------------------------------------------------------


class TestRetryPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_ms=50.0, max_delay_ms=10.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(retry_on=())

    def test_schedule_shape(self):
        policy = RetryPolicy(retries=5, base_delay_ms=1.0, multiplier=2.0,
                             max_delay_ms=4.0, jitter=0.0)
        assert policy.delays_ms() == (1.0, 2.0, 4.0, 4.0, 4.0)

    def test_jitter_shrinks_delays_only(self):
        policy = RetryPolicy(retries=8, base_delay_ms=2.0, jitter=0.5,
                             max_delay_ms=100.0)
        nominal = RetryPolicy(retries=8, base_delay_ms=2.0, jitter=0.0,
                              max_delay_ms=100.0).delays_ms()
        for delay, cap in zip(policy.delays_ms(), nominal):
            assert 0.5 * cap <= delay <= cap

    def test_call_succeeds_after_transient_failures(self):
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            if attempt < 2:
                raise InjectedFaultError("transient")
            return "ok"

        sleeps = []
        policy = RetryPolicy(retries=3, base_delay_ms=1.0)
        assert policy.call(flaky, sleep=sleeps.append) == "ok"
        assert attempts == [0, 1, 2]
        assert len(sleeps) == 2

    def test_call_exhausts_budget(self):
        policy = RetryPolicy(retries=2, base_delay_ms=0.0)
        calls = []

        def doomed(attempt):
            calls.append(attempt)
            raise InjectedFaultError("always")

        with pytest.raises(InjectedFaultError):
            policy.call(doomed, sleep=lambda s: None)
        assert calls == [0, 1, 2]  # first try + 2 retries

    def test_call_does_not_retry_permanent_errors(self):
        policy = RetryPolicy(retries=3)
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            policy.call(broken, sleep=lambda s: None)
        assert calls == [0]

    def test_on_retry_reports_each_backoff(self):
        policy = RetryPolicy(retries=2, base_delay_ms=1.0)
        seen = []

        def doomed(attempt):
            raise InjectedFaultError("always")

        with pytest.raises(InjectedFaultError):
            policy.call(
                doomed, sleep=lambda s: None,
                on_retry=lambda a, e, d: seen.append((a, type(e), d)),
            )
        assert [a for a, _, _ in seen] == [0, 1]
        assert all(t is InjectedFaultError for _, t, _ in seen)
        assert tuple(d for _, _, d in seen) == policy.delays_ms()

    def test_transient_family_is_curated(self):
        assert InjectedFaultError in TRANSIENT_ERRORS
        assert TimeoutError in TRANSIENT_ERRORS
        assert ValueError not in TRANSIENT_ERRORS

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        retries=st.integers(0, 8),
        base=st.floats(0.0, 10.0, allow_nan=False),
        jitter=st.floats(0.0, 1.0, allow_nan=False),
    )
    def test_schedule_is_deterministic_per_seed(self, seed, retries, base,
                                                jitter):
        make = lambda: RetryPolicy(  # noqa: E731
            retries=retries, base_delay_ms=base, max_delay_ms=base + 100.0,
            jitter=jitter, seed=seed,
        )
        first, second = make().delays_ms(), make().delays_ms()
        assert first == second
        assert len(first) == retries
        assert all(d >= 0 for d in first)


# -- circuit breaker -----------------------------------------------------------------


class TestCircuitBreaker:
    def breaker(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=threshold, cooldown_s=cooldown),
            clock=clock,
        )
        return breaker, clock

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(cooldown_s=-1.0)

    def test_opens_after_consecutive_failures_only(self):
        breaker, _ = self.breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # concurrent callers keep failing fast
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker, clock = self.breaker(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()


# -- chaos policy --------------------------------------------------------------------


class TestChaosPolicy:
    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigurationError):
            ChaosPolicy(worker_crash_p=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(latency_spike_ms=-1.0)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(max_crashes_per_site=-1)

    def test_inactive_by_default(self):
        assert not ChaosPolicy().active
        assert ChaosPolicy(worker_crash_p=0.1).active
        assert ChaosPolicy(flush_error_p=0.1).active
        # A spike size without a probability (or vice versa) injects
        # nothing.
        assert not ChaosPolicy(latency_spike_ms=5.0).active
        assert not ChaosPolicy(latency_spike_p=0.5).active

    def test_schedule_is_deterministic(self):
        a = ChaosPolicy(seed=7, worker_crash_p=0.5, flush_error_p=0.5)
        b = ChaosPolicy(seed=7, worker_crash_p=0.5, flush_error_p=0.5)
        sites = [f"site{i}" for i in range(32)]
        assert [a.crashes_for(s) for s in sites] == \
            [b.crashes_for(s) for s in sites]
        assert [a.flush_should_fail(s, 0) for s in sites] == \
            [b.flush_should_fail(s, 0) for s in sites]
        c = ChaosPolicy(seed=8, worker_crash_p=0.5, flush_error_p=0.5)
        assert [a.crashes_for(s) for s in sites] != \
            [c.crashes_for(s) for s in sites]

    def test_crashes_are_capped_so_retry_converges(self):
        chaos = ChaosPolicy(seed=0, worker_crash_p=1.0, max_crashes_per_site=2)
        for site in range(16):
            assert chaos.crashes_for(site) == 2
            assert chaos.should_crash_worker(site, 0)
            assert chaos.should_crash_worker(site, 1)
            assert not chaos.should_crash_worker(site, 2)

    def test_maybe_crash_worker_raises_in_process(self):
        chaos = ChaosPolicy(seed=0, worker_crash_p=1.0)
        with pytest.raises(WorkerCrashError):
            chaos.maybe_crash_worker("site", 0)
        # Attempt beyond the cap: no crash.
        chaos.maybe_crash_worker("site", chaos.max_crashes_per_site)

    def test_on_flush_spikes_then_fails(self):
        chaos = ChaosPolicy(seed=1, flush_error_p=1.0,
                            latency_spike_ms=5.0, latency_spike_p=1.0)
        slept = []
        with pytest.raises(InjectedFaultError):
            chaos.on_flush("m/0", 0, sleep=slept.append)
        assert slept == [5.0 / 1e3]
        clean = ChaosPolicy(seed=1)
        clean.on_flush("m/0", 0, sleep=slept.append)  # no-op
        assert len(slept) == 1


# -- campaign journal ----------------------------------------------------------------


class TestCampaignJournal:
    def test_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "run.jsonl")
        assert not journal.exists()
        journal.begin(run_id="abc", kind="sweep", total=5, cache_hits=2,
                      pending=["k1", "k2", "k3"])
        journal.mark_done("k1")
        state = journal.load()
        assert state.meta["run_id"] == "abc"
        assert state.total == 5
        assert state.finished == 3  # 2 hits + k1
        assert state.remaining == ["k2", "k3"]
        assert not state.complete and not state.interrupted

    def test_interrupt_then_resume_header_resets_tallies(self, tmp_path):
        journal = CampaignJournal(tmp_path / "run.jsonl")
        journal.begin(run_id="abc", kind="sweep", total=4, cache_hits=0,
                      pending=["k1", "k2", "k3", "k4"])
        journal.mark_done("k1")
        journal.mark_done("k2")
        journal.mark_interrupted()
        assert journal.load().interrupted
        # The resumed attempt counts k1/k2 as cache hits; its header
        # must reset the per-attempt done list or they'd double-count.
        journal.begin(run_id="abc", kind="sweep", total=4, cache_hits=2,
                      pending=["k3", "k4"])
        journal.mark_done("k3")
        journal.mark_done("k4")
        journal.mark_complete()
        state = journal.load()
        assert state.complete and not state.interrupted
        assert state.finished == state.total == 4
        assert state.remaining == []

    def test_load_survives_torn_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = CampaignJournal(path)
        journal.begin(run_id="abc", kind="sweep", total=2, cache_hits=0,
                      pending=["k1", "k2"])
        journal.mark_done("k1")
        journal.close()
        with path.open("a") as handle:
            handle.write('{"event": "done", "key": "k2"')  # torn write
        state = journal.load()
        assert state.finished == 1
        assert state.remaining == ["k2"]

    def test_missing_journal_loads_empty(self, tmp_path):
        state = CampaignJournal(tmp_path / "absent.jsonl").load()
        assert isinstance(state, JournalState)
        assert state.total == 0 and state.remaining == []

    def test_reset_truncates(self, tmp_path):
        journal = CampaignJournal(tmp_path / "run.jsonl")
        journal.begin(run_id="abc", kind="sweep", total=1, cache_hits=0,
                      pending=["k1"])
        journal.reset()
        assert not journal.exists()

    def test_run_id_is_order_independent(self):
        assert run_id_for(["a", "b", "c"]) == run_id_for(["c", "a", "b"])
        assert run_id_for(["a", "b"]) != run_id_for(["a", "b", "c"])
        assert len(run_id_for(["a"])) == 12


# -- supervisor policy ----------------------------------------------------------------


class TestSupervisorPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(retry_budget=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(watchdog_s=0.0)

    def test_defaults_cover_the_chaos_cap(self):
        # The default budget must cover the default chaos crash cap,
        # so a supervised chaos run always converges.
        assert SupervisorPolicy().retry_budget >= \
            ChaosPolicy().max_crashes_per_site
