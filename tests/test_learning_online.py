"""On-chip online learning engine and the section 4.4.1 comparison."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learning.online import (
    OnlineLearningEngine,
    column_update_comparison,
)
from repro.learning.stdp import StochasticSTDP
from repro.sram.bitcell import CellType
from repro.tile.tile import Tile


@pytest.fixture()
def tile(rng) -> Tile:
    w = rng.integers(0, 2, (256, 64)).astype(np.uint8)
    return Tile(w, np.zeros(64), cell_type=CellType.C1RW4R)


class TestEngine:
    def test_deterministic_rule_updates_weights(self, tile, rng):
        engine = OnlineLearningEngine(
            tile, StochasticSTDP(p_potentiate=1.0, p_depress=1.0)
        )
        pre = rng.integers(0, 2, 256).astype(np.uint8)
        engine.learn(pre, np.array([7]))
        # Neuron 7's column must now equal the pre vector exactly.
        assert (tile.weight_matrix()[:, 7] == pre).all()

    def test_other_columns_untouched(self, tile, rng):
        before = tile.weight_matrix()
        engine = OnlineLearningEngine(
            tile, StochasticSTDP(p_potentiate=1.0, p_depress=1.0)
        )
        engine.learn(rng.integers(0, 2, 256), np.array([7]))
        after = tile.weight_matrix()
        mask = np.ones(64, dtype=bool)
        mask[7] = False
        assert (after[:, mask] == before[:, mask]).all()

    def test_boolean_mask_accepted(self, tile, rng):
        engine = OnlineLearningEngine(tile)
        mask = np.zeros(64, dtype=bool)
        mask[[1, 5]] = True
        assert engine.learn(rng.integers(0, 2, 256), mask) == 2

    def test_cost_accounting_multiport(self, tile, rng):
        """One neuron spanning 2 row blocks: 2 column RMWs of 4+4
        accesses each."""
        engine = OnlineLearningEngine(tile)
        engine.learn(rng.integers(0, 2, 256), np.array([0]))
        assert engine.report.column_updates == 1
        assert engine.report.transposed_accesses == 2 * 8
        assert engine.report.time_ns == pytest.approx(2 * (9.9 + 8.04), rel=1e-3)

    def test_cost_accounting_6t(self, rng):
        w = rng.integers(0, 2, (128, 32)).astype(np.uint8)
        tile = Tile(w, np.zeros(32), cell_type=CellType.C6T)
        engine = OnlineLearningEngine(tile)
        engine.learn(rng.integers(0, 2, 128), np.array([3]))
        assert engine.report.transposed_accesses == 256
        assert engine.report.time_ns == pytest.approx(257.8, rel=1e-3)

    def test_shape_checked(self, tile):
        engine = OnlineLearningEngine(tile)
        with pytest.raises(ConfigurationError):
            engine.learn(np.zeros(100), np.array([0]))


class TestSection441Comparison:
    def test_paper_numbers(self):
        comp = column_update_comparison()
        base = comp["1RW"]
        assert base["time_ns"] == pytest.approx(257.8, rel=1e-3)
        assert base["energy_pj"] == pytest.approx(157.0, rel=5e-3)
        assert base["accesses"] == 256
        best = comp["1RW+4R"]
        assert best["read_time_ns"] == pytest.approx(9.9, rel=1e-3)
        assert best["write_time_ns"] == pytest.approx(8.04, rel=1e-3)
        assert best["paper_read_ratio"] == pytest.approx(26.0, rel=0.01)
        assert best["paper_write_ratio"] == pytest.approx(19.5, rel=0.01)

    def test_all_multiport_cells_beat_the_baseline(self):
        comp = column_update_comparison()
        base_time = comp["1RW"]["time_ns"]
        for cell in ("1RW+1R", "1RW+2R", "1RW+3R", "1RW+4R"):
            assert comp[cell]["time_speedup_vs_6t"] > 10.0
            assert comp[cell]["time_ns"] < base_time


class TestClosedLoopLearning:
    def test_stdp_imprints_a_pattern(self, rng):
        """Repeated coincident activity imprints the pattern column."""
        w = rng.integers(0, 2, (128, 16)).astype(np.uint8)
        tile = Tile(w, np.zeros(16), cell_type=CellType.C1RW2R)
        engine = OnlineLearningEngine(
            tile, StochasticSTDP(p_potentiate=0.5, p_depress=0.5, seed=8)
        )
        pattern = (rng.random(128) < 0.3).astype(np.uint8)
        for _ in range(30):
            engine.learn(pattern, np.array([4]))
        learned = tile.weight_matrix()[:, 4]
        agreement = (learned == pattern).mean()
        assert agreement > 0.95
