"""Low-power operating modes (section 4.4.2 extension)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.system.energy import SystemEnergyModel
from repro.system.lowpower import LowPowerScaler, OperatingPoint
from repro.tech.finfet import VtFlavor
from repro.tile.network import EsamNetwork, InferenceTrace


@pytest.fixture(scope="module")
def nominal_metrics():
    rng = np.random.default_rng(42)
    weights = [rng.integers(0, 2, (128, 64)).astype(np.uint8),
               rng.integers(0, 2, (64, 10)).astype(np.uint8)]
    thresholds = [rng.integers(-5, 10, 64), np.full(10, 511)]
    net = EsamNetwork(weights, thresholds, cell_type=CellType.C1RW4R)
    trace = InferenceTrace()
    for _ in range(4):
        net.infer(rng.random(128) < 0.3, trace)
    return SystemEnergyModel(net).metrics(trace)


@pytest.fixture(scope="module")
def scaler(nominal_metrics) -> LowPowerScaler:
    return LowPowerScaler(nominal_metrics)


class TestScalingLaws:
    def test_nominal_point_is_identity(self, scaler, nominal_metrics):
        op = scaler.operating_point(0.700, VtFlavor.SVT)
        assert op.clock_period_ns == pytest.approx(
            nominal_metrics.clock_period_ns, rel=1e-6
        )
        assert op.energy_per_inf_pj == pytest.approx(
            nominal_metrics.energy_per_inference_pj, rel=1e-6
        )
        assert op.power_mw == pytest.approx(nominal_metrics.power_mw, rel=1e-6)

    def test_lower_vdd_slows_clock(self, scaler):
        assert (
            scaler.operating_point(0.5).clock_period_ns
            > 1.3 * scaler.operating_point(0.7).clock_period_ns
        )

    def test_lower_vdd_cuts_dynamic_energy_quadratically(self, scaler):
        factor = scaler.delay_factor(0.5, VtFlavor.SVT)
        assert factor > 1.0
        # Delay factor follows the alpha-power law, not linear V.
        assert factor > 0.5 / 0.7 * 1.2

    def test_hvt_slower_but_far_less_leaky(self, scaler):
        assert scaler.delay_factor(0.7, VtFlavor.HVT) == pytest.approx(
            1.45, rel=1e-6
        )
        assert scaler.leakage_factor(0.7, VtFlavor.HVT) < 0.3


class TestPaperClaim:
    """Section 4.4.2: lower VDD + HVT cuts power a lot while keeping
    energy/inference similar."""

    def test_power_reduction_significant(self, scaler):
        nominal = scaler.operating_point(0.70, VtFlavor.SVT)
        low = scaler.operating_point(0.50, VtFlavor.HVT)
        assert low.power_mw < 0.45 * nominal.power_mw

    def test_energy_per_inference_similar(self, scaler):
        nominal = scaler.operating_point(0.70, VtFlavor.SVT)
        low = scaler.operating_point(0.50, VtFlavor.HVT)
        ratio = low.energy_per_inf_pj / nominal.energy_per_inf_pj
        assert 0.5 < ratio < 1.2

    def test_underclocking_trades_power_for_throughput(self, scaler):
        base = scaler.operating_point(0.70)
        slow = scaler.operating_point(0.70, clock_slowdown=4.0)
        assert slow.throughput_inf_s == pytest.approx(
            base.throughput_inf_s / 4.0
        )
        assert slow.power_mw < base.power_mw

    def test_sweep_structure(self, scaler):
        points = scaler.sweep()
        assert len(points) == 6
        labels = {p.label for p in points}
        assert "500 mV / HVT" in labels


class TestValidation:
    def test_rejects_subthreshold_vdd(self, scaler):
        with pytest.raises(ConfigurationError):
            scaler.operating_point(0.30, VtFlavor.HVT)

    def test_rejects_bad_slowdown(self, scaler):
        with pytest.raises(ConfigurationError):
            scaler.operating_point(0.7, clock_slowdown=0.5)
