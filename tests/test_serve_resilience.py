"""Serving-layer resilience: deadlines, retries, breakers, crash safety.

White-box where determinism demands it (deadline shedding against an
injected clock), end-to-end everywhere else: a real server over a real
random network, driven through injected flush faults, open circuits, a
sabotaged dispatch loop and a multi-threaded backpressure hammer.  The
invariant under test throughout: every admitted request resolves or
fails *explicitly*, and ``submitted == completed + failed + shed``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    InjectedFaultError,
    ModelUnavailableError,
    QueueFullError,
    ServingError,
)
from repro.resilience import BreakerPolicy, ChaosPolicy, RetryPolicy
from repro.serve import BatchPolicy, InferenceServer, ModelRegistry
from repro.serve.server import _Request

from tests.test_serve import FakeClock, random_network, random_spikes


def make_stack(*, breaker=None, retry=None, chaos=None, clock=None,
               max_queue_depth=256, max_wait_ms=0.0, seed=0):
    """A registry + server over one small random network."""
    registry = ModelRegistry(
        breaker=breaker, clock=clock or time.monotonic
    )
    network = random_network(seed=seed)
    registry.register_network("m", network)
    server = InferenceServer(
        registry,
        policy=BatchPolicy(max_batch_size=16, max_wait_ms=max_wait_ms),
        max_queue_depth=max_queue_depth,
        retry=retry, chaos=chaos,
    )
    return registry, network, server


def accounting(metrics) -> tuple[int, int]:
    data = metrics.to_dict()
    return (data["submitted"],
            data["completed"] + data["failed"] + data["shed"])


# -- deadlines & load shedding --------------------------------------------------------


class TestDeadlines:
    def test_rejects_non_positive_deadline(self):
        _, _, server = make_stack()
        with server:
            with pytest.raises(ConfigurationError):
                server.submit("m", random_spikes(1)[0], deadline_ms=0.0)

    def test_expired_requests_are_shed_before_dispatch(self):
        # White-box against an injected clock: one request's deadline
        # expires before the flush, its batchmate's does not.
        clock = FakeClock()
        _, _, server = make_stack()
        server._clock = clock
        spikes = random_spikes(2)
        doomed = _Request(model="m", spikes=spikes[0], submitted_at=0.0,
                          deadline_at=0.5)
        alive = _Request(model="m", spikes=spikes[1], submitted_at=0.0,
                         deadline_at=5.0)
        with server._cond:
            server._in_flight = 2
        clock.advance(1.0)
        server._run_batch("m", [doomed, alive])
        with pytest.raises(DeadlineExceededError):
            doomed.future.result(timeout=0)
        assert alive.future.result(timeout=0) >= 0
        assert server.metrics.shed == 1
        assert server.metrics.completed == 1
        assert server.in_flight == 0

    def test_end_to_end_shedding_is_accounted(self):
        # A 50 ms coalescing window guarantees the 1 ms deadline is
        # long gone by flush time — every request is shed, none served.
        _, _, server = make_stack(max_wait_ms=50.0)
        spikes = random_spikes(4)
        with server:
            futures = [
                server.submit("m", row, deadline_ms=1.0) for row in spikes
            ]
            time.sleep(0.01)
        for future in futures:
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5.0)
        data = server.metrics.to_dict()
        assert data["shed"] == len(spikes)
        assert data["completed"] == 0
        assert accounting(server.metrics)[0] == accounting(server.metrics)[1]

    def test_undeadlined_requests_never_shed(self):
        _, network, server = make_stack()
        spikes = random_spikes(8)
        with server:
            futures = [server.submit("m", row) for row in spikes]
            served = [f.result(timeout=10.0) for f in futures]
        offline = network.classify_batch(spikes)
        assert served == [int(p) for p in offline]
        assert server.metrics.shed == 0


# -- retry policy on the flush path ---------------------------------------------------


class TestFlushRetries:
    def test_transient_faults_are_absorbed_and_counted(self):
        chaos = ChaosPolicy(seed=3, flush_error_p=0.4)
        retry = RetryPolicy(retries=4, base_delay_ms=0.0)
        _, network, server = make_stack(chaos=chaos, retry=retry)
        spikes = random_spikes(32)
        with server:
            futures = [server.submit("m", row) for row in spikes]
            served = [f.result(timeout=10.0) for f in futures]
        # Every request completed despite injected faults, and the
        # served predictions are bit-identical to offline.
        assert served == [int(p) for p in network.classify_batch(spikes)]
        data = server.metrics.to_dict()
        assert data["failed"] == 0
        assert data["retried"] > 0
        assert accounting(server.metrics)[0] == accounting(server.metrics)[1]

    def test_exhausted_retries_fail_the_batch_explicitly(self):
        # flush_error_p=1.0 defeats any retry budget; the error reaches
        # the caller and the accounting still balances.
        chaos = ChaosPolicy(seed=3, flush_error_p=1.0)
        retry = RetryPolicy(retries=2, base_delay_ms=0.0)
        _, _, server = make_stack(chaos=chaos, retry=retry)
        with server:
            future = server.submit("m", random_spikes(1)[0])
            with pytest.raises(InjectedFaultError):
                future.result(timeout=10.0)
        data = server.metrics.to_dict()
        assert data["failed"] == 1
        assert data["retried"] == 2
        assert accounting(server.metrics)[0] == accounting(server.metrics)[1]


# -- circuit breaker ------------------------------------------------------------------


class TestCircuitBreaking:
    def test_open_circuit_fails_fast_then_probe_recovers(self, monkeypatch):
        clock = FakeClock()
        breaker = BreakerPolicy(failure_threshold=2, cooldown_s=10.0)
        registry, network, server = make_stack(breaker=breaker, clock=clock)
        spikes = random_spikes(8)

        boom = True
        real = network.engine_backend("fast")

        class FlakyBackend:
            def classify_batch(self, batch):
                if boom:
                    raise InjectedFaultError("injected")
                return real.classify_batch(batch)

        # The server flushes through engine_backend() (validation already
        # happened at submit), so faults are injected at the backend seam.
        monkeypatch.setattr(
            network, "engine_backend", lambda engine="fast", **kw: FlakyBackend()
        )
        with server:
            # Two failed flushes open the circuit.
            for i in range(2):
                with pytest.raises(InjectedFaultError):
                    server.classify("m", spikes[i], timeout=10.0)
            assert registry.circuit_state("m") == "open"
            with pytest.raises(ModelUnavailableError):
                server.submit("m", spikes[2])
            assert server.metrics.broken_circuit == 1
            # Cooldown over: exactly one half-open probe is admitted.
            clock.advance(10.0)
            boom = False
            assert server.classify("m", spikes[3], timeout=10.0) >= 0
            assert registry.circuit_state("m") == "closed"
            assert server.classify("m", spikes[4], timeout=10.0) >= 0
        # Rejected submissions were never admitted, so they are absent
        # from the admission accounting.
        assert accounting(server.metrics)[0] == accounting(server.metrics)[1]

    def test_swap_resets_the_breaker(self):
        clock = FakeClock()
        breaker = BreakerPolicy(failure_threshold=1, cooldown_s=1e9)
        registry = ModelRegistry(breaker=breaker, clock=clock)
        registry.register_network("m", random_network(seed=0))
        registry.record_flush_failure("m")
        assert registry.circuit_state("m") == "open"
        with pytest.raises(ModelUnavailableError):
            registry.check("m")
        registry.swap("m", random_network(seed=1))
        assert registry.circuit_state("m") == "closed"
        registry.check("m")

    def test_describe_reports_circuit_state(self):
        registry = ModelRegistry(breaker=BreakerPolicy(failure_threshold=1))
        registry.register_network("m", random_network())
        assert registry.describe()[0]["circuit"] == "closed"
        ungated = ModelRegistry()
        ungated.register_network("m", random_network())
        assert "circuit" not in ungated.describe()[0]
        assert ungated.circuit_state("m") is None
        ungated.record_flush_failure("m")  # no-op without a policy
        ungated.check("m")


# -- dispatch-thread crash ------------------------------------------------------------


class TestDispatchCrash:
    # The dispatch thread deliberately re-raises after failing the
    # pending futures (so real deployments log the crash); pytest
    # would report that as an unhandled thread exception.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_crash_fails_pending_and_is_terminal(self, monkeypatch):
        _, _, server = make_stack()

        def sabotaged(model, requests):
            raise RuntimeError("dispatch bug")

        monkeypatch.setattr(server, "_run_batch", sabotaged)
        server.start()
        future = server.submit("m", random_spikes(1)[0])
        with pytest.raises(ServingError, match="dispatch thread crashed"):
            future.result(timeout=10.0)
        assert server.failed
        assert not server.running
        assert server.in_flight == 0
        # Terminal: further submissions are rejected with the distinct
        # crashed-state message until the server is restarted.
        with pytest.raises(ServingError, match="crashed"):
            server.submit("m", random_spikes(1)[0])
        data = server.metrics.to_dict()
        assert data["failed"] == data["submitted"] == 1
        assert accounting(server.metrics)[0] == accounting(server.metrics)[1]
        server.stop()  # must not hang or raise


# -- backpressure hammer --------------------------------------------------------------


class TestBackpressureHammer:
    def test_hammer_never_exceeds_depth_and_loses_nothing(self):
        depth = 16
        n_threads, per_thread = 8, 40
        _, network, server = make_stack(
            max_queue_depth=depth, max_wait_ms=0.5,
        )
        spikes = random_spikes(n_threads * per_thread)
        offline = network.classify_batch(spikes)
        results = np.full(len(spikes), -1, dtype=np.int64)
        errors: list[Exception] = []

        def hammer(k: int) -> None:
            try:
                for i in range(k * per_thread, (k + 1) * per_thread):
                    while True:
                        try:
                            future = server.submit("m", spikes[i])
                            break
                        except QueueFullError:
                            time.sleep(0.0005)
                    results[i] = future.result(timeout=30.0)
            except Exception as error:  # noqa: BLE001 - asserted below
                errors.append(error)

        with server:
            threads = [
                threading.Thread(target=hammer, args=(k,))
                for k in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        # No admitted request was lost or reordered across threads.
        assert np.array_equal(results, offline)
        data = server.metrics.to_dict()
        assert data["submitted"] == len(spikes)
        assert data["completed"] == len(spikes)
        assert data["failed"] == data["shed"] == 0
        # The observed queue depth never exceeded the bound.
        max_depth = max(int(k) for k in data["queue_depth_hist"])
        assert max_depth <= depth


# -- public API -----------------------------------------------------------------------


class TestPublicApi:
    def test_error_classes_are_exported(self):
        for name in ("DeadlineExceededError", "ModelUnavailableError",
                     "WorkerCrashError", "InjectedFaultError",
                     "QueueFullError", "ServingError"):
            assert name in repro.__all__
            assert issubclass(getattr(repro, name), Exception)
        assert issubclass(repro.DeadlineExceededError, repro.ServingError)
        assert issubclass(repro.ModelUnavailableError, repro.ServingError)

    def test_resilience_package_surface(self):
        from repro import resilience

        for name in resilience.__all__:
            assert getattr(resilience, name) is not None
