"""Figure 7: decoupled read-port precharge/sense model."""

import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.sram.readport import (
    CLOCK_PERIOD_NS,
    INFERENCE_READ_TIME_6T_NS,
    ReadPortModel,
)

MULTIPORT = [CellType.from_ports(p) for p in (1, 2, 3, 4)]


@pytest.fixture(scope="module")
def model() -> ReadPortModel:
    return ReadPortModel()


class TestVprechSelection:
    """Section 4.2: why the paper selects Vprech = 500 mV."""

    @pytest.mark.parametrize("cell", MULTIPORT)
    def test_500mv_saves_at_least_43_percent(self, model, cell):
        e500 = model.operating_point(cell, 0.5).avg_access_energy_pj
        e700 = model.operating_point(cell, 0.7).avg_access_energy_pj
        assert 1.0 - e500 / e700 >= 0.43

    @pytest.mark.parametrize("cell", MULTIPORT)
    def test_500mv_costs_at_most_19_percent_time(self, model, cell):
        t500 = model.operating_point(cell, 0.5).avg_access_time_ns
        t700 = model.operating_point(cell, 0.7).avg_access_time_ns
        assert t500 / t700 - 1.0 <= 0.19

    @pytest.mark.parametrize("ports", [1, 2])
    def test_400mv_saves_more_for_1_2_ports(self, model, ports):
        """Up to ~10 % extra saving for the small cells."""
        cell = CellType.from_ports(ports)
        e400 = model.operating_point(cell, 0.4).avg_access_energy_pj
        e500 = model.operating_point(cell, 0.5).avg_access_energy_pj
        assert 0.0 < 1.0 - e400 / e500 <= 0.11

    @pytest.mark.parametrize("ports", [3, 4])
    def test_400mv_hurts_3_4_ports(self, model, ports):
        """Slow precharge flips the sign for the big cells."""
        cell = CellType.from_ports(ports)
        e400 = model.operating_point(cell, 0.4).avg_access_energy_pj
        e500 = model.operating_point(cell, 0.5).avg_access_energy_pj
        assert e400 > e500

    @pytest.mark.parametrize("ports", [3, 4])
    def test_extended_precharge_only_at_400mv_3_4_ports(self, model, ports):
        cell = CellType.from_ports(ports)
        assert model.operating_point(cell, 0.4).extended_precharge
        assert not model.operating_point(cell, 0.5).extended_precharge

    @pytest.mark.parametrize("ports", [1, 2])
    def test_no_extended_precharge_small_cells(self, model, ports):
        cell = CellType.from_ports(ports)
        for vprech in (0.4, 0.5, 0.6, 0.7):
            assert not model.operating_point(cell, vprech).extended_precharge


class TestPortScaling:
    """Section 4.2: the effect of the number of inference ports."""

    def test_avg_access_time_decreases_with_ports(self, model):
        times = [
            model.operating_point(c, 0.5).avg_access_time_ns for c in MULTIPORT
        ]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_energy_rises_after_fourth_port(self, model):
        """Average access energy bottoms out before the 4th port."""
        energies = [
            model.operating_point(c, 0.5).avg_access_energy_pj for c in MULTIPORT
        ]
        assert energies[3] > energies[2]

    def test_energy_dip_before_rise(self, model):
        energies = [
            model.operating_point(c, 0.5).avg_access_energy_pj for c in MULTIPORT
        ]
        assert min(energies[1], energies[2]) < energies[0]

    def test_figure7_grid_complete(self, model):
        points = model.figure7()
        assert len(points) == 16
        assert {p.ports for p in points} == {1, 2, 3, 4}
        assert {round(p.vprech, 1) for p in points} == {0.4, 0.5, 0.6, 0.7}


class TestTimingComponents:
    def test_precharge_slower_at_low_vprech(self, model):
        cell = CellType.C1RW1R
        assert model.precharge_time_ns(cell, 0.4) > 1.5 * model.precharge_time_ns(
            cell, 0.5
        )

    def test_read_time_grows_with_ports(self, model):
        times = [model.read_time_ns(c) for c in MULTIPORT]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_6t_inference_read_time(self, model):
        assert model.read_time_ns(CellType.C6T) == pytest.approx(
            INFERENCE_READ_TIME_6T_NS
        )

    def test_precharge_budget_below_clock(self, model):
        for cell in MULTIPORT:
            assert model.precharge_budget_ns(cell) < CLOCK_PERIOD_NS[cell]

    def test_rejects_subthreshold_vprech(self, model):
        with pytest.raises(ConfigurationError):
            model.precharge_time_ns(CellType.C1RW1R, 0.25)


class TestSixTBaseline:
    def test_6t_forced_to_vdd(self, model):
        """The shared RW port cannot scale the precharge voltage."""
        op = model.operating_point(CellType.C6T, 0.5)
        assert op.vprech == pytest.approx(0.7)

    def test_6t_read_energy_higher_than_multiport(self, model):
        e6 = model.operating_point(CellType.C6T, 0.5).read_energy_pj
        e4 = model.operating_point(CellType.C1RW4R, 0.5).read_energy_pj
        assert e6 > 1.2 * e4


class TestLeakage:
    def test_leakage_scales_with_area(self, model):
        l1 = model.leakage_power_mw(CellType.C1RW1R, 0.5)
        l4 = model.leakage_power_mw(CellType.C1RW4R, 0.5)
        assert l4 == pytest.approx(l1 * 2.625 / 1.5, rel=1e-6)

    def test_leakage_scales_with_vprech(self, model):
        low = model.leakage_power_mw(CellType.C1RW2R, 0.4)
        high = model.leakage_power_mw(CellType.C1RW2R, 0.6)
        assert high > low


class TestScaledArrays:
    def test_smaller_array_cheaper(self):
        small = ReadPortModel(rows=64, cols=64)
        full = ReadPortModel(rows=128, cols=128)
        cell = CellType.C1RW4R
        assert (
            small.operating_point(cell, 0.5).read_energy_pj
            < full.operating_point(cell, 0.5).read_energy_pj
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            ReadPortModel(rows=0)
