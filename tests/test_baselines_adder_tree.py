"""Adder-tree baseline macro (the intro's comparison point)."""

import pytest

from repro.baselines.adder_tree import AdderTreeMacro, compare_with_cimp
from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.sram.layout import floorplan
from repro.sram.readport import ReadPortModel


@pytest.fixture(scope="module")
def macro() -> AdderTreeMacro:
    return AdderTreeMacro(128, 128)


class TestStructure:
    def test_tree_depth(self, macro):
        assert macro.tree_levels == 7

    def test_adder_slices_roughly_2x_rows(self, macro):
        """Sum of level widths ~= 2 * rows bit-slices per column."""
        assert 1.5 * 128 < macro.adder_bits_per_column < 2.5 * 128

    def test_considerable_hardware_overhead(self, macro):
        """Paper: adder trees introduce considerable hardware overhead —
        the reduction logic dwarfs the 6T array it reads."""
        report = macro.report()
        assert report.tree_area_overhead > 1.0

    def test_adder_tree_macro_bigger_than_esam_macro(self, macro):
        esam = floorplan(CellType.C1RW4R).macro_area_um2()
        assert macro.area_um2() > esam


class TestEnergy:
    def test_energy_insensitive_to_sparsity(self, macro):
        """The tree reads all rows regardless of activity."""
        dense = macro.energy_per_mvm_pj(input_activity=1.0)
        sparse = macro.energy_per_mvm_pj(input_activity=0.1)
        assert sparse > 0.85 * dense

    def test_single_cycle_throughput(self, macro):
        """One matrix-vector product per (longer) cycle."""
        assert macro.clock_period_ns() < 1.0


class TestComparisonWithCimp:
    @pytest.fixture(scope="class")
    def cimp_read_pj(self):
        model = ReadPortModel()
        return model.operating_point(CellType.C1RW4R, 0.5).read_energy_pj

    def test_cimp_wins_at_snn_sparsity(self, cimp_read_pj):
        """At the paper's activity (~15-35 % of 128 rows spiking), the
        event-driven CIM-P pass is several times cheaper."""
        result = compare_with_cimp(20.0, cimp_read_pj)
        assert result["cimp_advantage"] > 3.0

    def test_adder_tree_wins_when_dense(self, cimp_read_pj):
        """Dense activations push CIM-P past the crossover."""
        result = compare_with_cimp(128.0, cimp_read_pj)
        assert result["crossover_spikes"] < 128.0
        assert result["cimp_advantage"] < 1.0

    def test_crossover_consistency(self, cimp_read_pj):
        result = compare_with_cimp(50.0, cimp_read_pj)
        at_crossover = compare_with_cimp(
            result["crossover_spikes"], cimp_read_pj
        )
        assert at_crossover["cimp_advantage"] == pytest.approx(1.0, rel=0.1)


class TestValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            AdderTreeMacro(1, 128)

    def test_rejects_bad_activity(self, macro):
        with pytest.raises(ConfigurationError):
            macro.energy_per_mvm_pj(input_activity=1.5)

    def test_rejects_negative_spikes(self):
        with pytest.raises(ConfigurationError):
            compare_with_cimp(-1.0, 0.3)
