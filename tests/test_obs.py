"""Observability layer: tracer, exporters, metric registry, dashboard.

Covers the subsystem contracts end to end: span nesting and the
injectable clock, loss-free JSONL round-trips, valid Chrome
``trace_event`` exports, Prometheus-text round-trips through
:func:`parse_prometheus_text`, the engine / server / campaign span
sites (instrumentation must never change results), and the HTML
dashboard — including the full ``repro-serve --trace-out`` →
``python -m repro.obs report`` pipeline.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricRegistry,
    NullTracer,
    Span,
    Tracer,
    get_registry,
    get_tracer,
    load_trace,
    parse_prometheus_text,
    set_tracer,
    spans_from_jsonl,
)
from repro.obs.report import (
    collect_bench_files,
    render_report,
    trace_aggregate,
    write_report,
)
from repro.obs.trace import _NULL_SPAN
from repro.serve import BatchPolicy, InferenceServer, ModelRegistry
from repro.sram.bitcell import CellType
from repro.tile.network import EsamNetwork


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


def random_network(layers=(64, 32, 10), seed=0,
                   cell_type=CellType.C1RW4R) -> EsamNetwork:
    rng = np.random.default_rng(seed)
    weights = [
        rng.integers(0, 2, (a, b)).astype(np.uint8)
        for a, b in zip(layers[:-1], layers[1:])
    ]
    thresholds = [
        np.full(b, max(1, a // 16), dtype=np.int64)
        for a, b in zip(layers[:-1], layers[1:])
    ]
    return EsamNetwork(weights, thresholds, cell_type=cell_type)


def random_spikes(n, width=64, seed=3, density=0.2) -> np.ndarray:
    return np.random.default_rng(seed).random((n, width)) < density


@pytest.fixture
def installed_tracer():
    """A real tracer installed as the process default, restored after."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# -- spans and the tracer ------------------------------------------------------------


class TestSpan:
    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            Span(name="x", span_id=1, parent_id=None,
                 start_s=2.0, end_s=1.0)

    def test_dict_round_trip(self):
        span = Span(name="engine.kernel", span_id=7, parent_id=3,
                    start_s=1.25, end_s=2.5, thread="worker",
                    attrs={"tile": 0})
        assert Span.from_dict(span.to_dict()) == span
        assert span.duration_s == pytest.approx(1.25)


class TestTracer:
    def test_nesting_and_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", kind="test"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
            clock.advance(0.25)
        inner, outer = tracer.spans()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.duration_s == pytest.approx(0.5)
        assert outer.duration_s == pytest.approx(1.75)
        assert outer.attrs == {"kind": "test"}

    def test_record_with_caller_timestamps_nests(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            tracer.record("measured", 10.0, 12.5, source="server")
        measured = tracer.spans()[0]
        assert measured.parent_id == tracer.spans()[1].span_id
        assert measured.duration_s == pytest.approx(2.5)
        assert measured.attrs == {"source": "server"}

    def test_sibling_spans_in_threads_do_not_nest(self):
        tracer = Tracer()
        seen = []

        def worker():
            with tracer.span("threaded"):
                pass
            seen.append(True)

        with tracer.span("main-side"):
            thread = threading.Thread(target=worker, name="obs-worker")
            thread.start()
            thread.join()
        threaded = next(s for s in tracer.spans() if s.name == "threaded")
        assert threaded.parent_id is None  # other thread, other stack
        assert threaded.thread == "obs-worker"

    def test_stats_shape(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            pass
        stats = tracer.stats()
        assert stats["enabled"] is True
        assert stats["spans_recorded"] == 1
        assert stats["overhead_s"] >= 0.0


class TestNullTracer:
    def test_is_the_process_default(self):
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer().enabled is False

    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("ignored", attr=1):
            tracer.record("also-ignored", 0.0, 1.0)
        assert tracer.spans() == ()
        assert tracer.span("x") is _NULL_SPAN  # one shared no-op object

    def test_set_tracer_restores_and_type_checks(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            assert set_tracer(previous) is tracer
        assert isinstance(get_tracer(), NullTracer)
        with pytest.raises(ConfigurationError):
            set_tracer("not a tracer")


# -- exporters -----------------------------------------------------------------------


class TestExporters:
    def _traced(self) -> Tracer:
        clock = FakeClock(100.0)
        tracer = Tracer(clock=clock)
        with tracer.span("outer", model="esam"):
            clock.advance(0.123456789)
            with tracer.span("inner", tile=0):
                clock.advance(0.001)
        tracer.record("measured", 100.05, 100.075, n=3)
        return tracer

    def test_jsonl_round_trip_is_bit_identical(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_jsonl(tmp_path / "run.trace.jsonl")
        assert spans_from_jsonl(path) == tracer.spans()

    def test_jsonl_meta_line_carries_environment(self, tmp_path):
        path = self._traced().write_jsonl(tmp_path / "t.jsonl")
        meta = json.loads(path.read_text().splitlines()[0])["meta"]
        assert meta["format"] == "repro-trace-v1"
        assert "python" in meta["environment"]

    def test_jsonl_tolerates_torn_final_line(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_jsonl(tmp_path / "t.jsonl")
        torn = path.read_text().rstrip("\n")[:-7]
        path.write_text(torn)
        spans = spans_from_jsonl(path)
        assert spans == tracer.spans()[:-1]

    def test_chrome_trace_is_valid_and_monotonic(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_chrome_trace(tmp_path / "t.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == 3
        assert all(e["ph"] == "X" for e in events)
        timestamps = [e["ts"] for e in events]
        assert timestamps == sorted(timestamps)
        assert timestamps[0] == 0.0  # relative to earliest start
        assert all(e["dur"] >= 0.0 for e in events)
        assert "environment" in data["otherData"]
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"]["tile"] == 0

    def test_load_trace_reads_both_formats(self, tmp_path):
        tracer = self._traced()
        jsonl = tracer.write_jsonl(tmp_path / "t.jsonl")
        chrome = tracer.write_chrome_trace(tmp_path / "t.json")
        assert load_trace(jsonl) == tracer.spans()
        chrome_spans = load_trace(chrome)
        assert {s.name for s in chrome_spans} == {
            s.name for s in tracer.spans()
        }
        by_name = {s.name: s for s in chrome_spans}
        original = {s.name: s for s in tracer.spans()}
        for name, span in by_name.items():
            assert span.duration_s == pytest.approx(
                original[name].duration_s, abs=1e-6
            )


# -- metric registry -----------------------------------------------------------------


class TestMetricRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricRegistry()
        counter = registry.counter("repro_x_total", kind="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)
        registry.gauge("repro_g").set(2.5)
        hist = registry.histogram("repro_h")
        for value in (2, 2, 8):
            hist.observe(value)
        assert hist.counts() == {2: 2, 8: 1}
        assert hist.count == 3 and hist.sum == 12

    def test_get_or_create_and_kind_collisions(self):
        registry = MetricRegistry()
        assert registry.counter("repro_x_total") is registry.counter(
            "repro_x_total"
        )
        assert registry.counter("repro_x_total", kind="a") is not (
            registry.counter("repro_x_total", kind="b")
        )
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total")
        registry.histogram("repro_hb", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            registry.histogram("repro_hb", buckets=(5.0,))

    def test_bucketed_histogram_cumulative_export(self):
        registry = MetricRegistry()
        hist = registry.histogram("repro_lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.7, 55.0, 1000.0, 5.0):
            hist.observe(value)
        samples = parse_prometheus_text(registry.to_text())
        assert samples[("repro_lat_ms_bucket", (("le", "1.0"),))] == 1
        assert samples[("repro_lat_ms_bucket", (("le", "10.0"),))] == 2
        assert samples[("repro_lat_ms_bucket", (("le", "100.0"),))] == 3
        assert samples[("repro_lat_ms_bucket", (("le", "+Inf"),))] == 4
        assert samples[("repro_lat_ms_count", ())] == 4
        assert samples[("repro_lat_ms_sum", ())] == pytest.approx(1060.7)

    def test_text_round_trip_is_exact(self):
        registry = MetricRegistry()
        registry.counter("repro_a_total", engine="fast").inc(12345)
        registry.gauge("repro_rate").set(0.1 + 0.2)  # non-representable
        registry.histogram("repro_sizes").observe(64)
        samples = parse_prometheus_text(registry.to_text())
        assert samples[("repro_a_total", (("engine", "fast"),))] == 12345
        assert samples[("repro_rate", ())] == 0.1 + 0.2  # bit-exact
        assert samples[("repro_sizes_bucket", (("value", "64"),))] == 1

    def test_environment_stamp_and_stable_exports(self):
        registry = MetricRegistry()
        registry.counter("repro_a_total").inc()
        text = registry.to_text()
        assert "repro_environment_info{" in text
        assert 'python="' in text
        assert "timestamp" not in text  # stamp excluded for stability
        assert registry.to_text() == text  # unchanged registry, same bytes
        assert "repro_environment_info" not in registry.to_text(
            environment=False
        )

    def test_snapshot_is_json_ready(self):
        registry = MetricRegistry()
        registry.counter("repro_a_total", kind="x").inc(2)
        registry.histogram("repro_h").observe(3)
        assert json.loads(json.dumps(registry.snapshot()))


# -- instrumentation sites -----------------------------------------------------------


class TestEngineInstrumentation:
    def test_fast_engine_emits_kernel_and_replay_spans(self, installed_tracer):
        network = random_network()
        spikes = random_spikes(4)
        network.classify_batch(spikes, engine="fast")
        names = [s.name for s in installed_tracer.spans()]
        n_tiles = len(network.tiles)
        assert names.count("engine.kernel") == n_tiles
        assert names.count("engine.replay") == n_tiles

    def test_bitpacked_adds_pack_spans_and_memo_gauges(self, installed_tracer):
        network = random_network()
        spikes = random_spikes(4)
        network.classify_batch(spikes, engine="bitpacked")
        names = [s.name for s in installed_tracer.spans()]
        assert names.count("engine.pack") == len(network.tiles)
        registry = get_registry()
        patterns = registry.gauge("repro_bitpacked_memo_patterns").value
        assert patterns > 0
        rate = registry.gauge("repro_bitpacked_memo_hit_rate").value
        assert 0.0 <= rate <= 1.0

    def test_tracing_does_not_change_predictions(self):
        network = random_network(seed=5)
        spikes = random_spikes(8, seed=9)
        baseline = network.classify_batch(spikes, engine="fast")
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            traced = network.classify_batch(spikes, engine="fast")
        finally:
            set_tracer(previous)
        assert np.array_equal(baseline, traced)
        assert tracer.stats()["spans_recorded"] > 0


class TestServerInstrumentation:
    def test_serving_emits_request_and_flush_spans(self):
        tracer = Tracer()
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        spikes = random_spikes(6)
        server = InferenceServer(
            registry, policy=BatchPolicy(max_batch_size=4, max_wait_ms=1.0),
            tracer=tracer,
        )
        with server:
            futures = [server.submit("demo", row) for row in spikes]
            results = [f.result(timeout=10.0) for f in futures]
        assert all(isinstance(r, int) for r in results)
        names = [s.name for s in tracer.spans()]
        assert names.count("serve.queue_wait") == len(spikes)
        assert "serve.batch_assembly" in names
        assert "serve.flush" in names
        flush = next(s for s in tracer.spans() if s.name == "serve.flush")
        assert flush.attrs["model"] == "demo"
        assert flush.attrs["outcome"] == "completed"
        # Engine spans landed in the same trace (global default was
        # not installed — the engine consults it, the server got an
        # explicit tracer), so only serve.* spans are present here.
        assert not any(name.startswith("engine.") for name in names)


class TestCampaignInstrumentation:
    def test_run_cached_points_counts_and_traces(self, tmp_path,
                                                 installed_tracer):
        from repro.sweep.cache import ResultCache
        from repro.sweep.runner import run_cached_points

        registry = get_registry()
        hits_before = registry.counter(
            "repro_cache_hits_total", kind="obs-test"
        ).value
        misses_before = registry.counter(
            "repro_cache_misses_total", kind="obs-test"
        ).value

        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            cache=cache, key_fn=lambda p: f"obs-{p}",
            load_row=lambda data: data["value"],
            dump_row=lambda row: {"value": row},
            evaluate=lambda points: [p * 10 for p in points],
            kind="obs-test",
        )
        rows, stats = run_cached_points([1, 2, 3], **kwargs)
        assert rows == [10, 20, 30]
        assert (stats.cache_hits, stats.evaluated) == (0, 3)
        rows, stats = run_cached_points([1, 2, 3], **kwargs)
        assert rows == [10, 20, 30]
        assert (stats.cache_hits, stats.evaluated) == (3, 0)

        hits = registry.counter(
            "repro_cache_hits_total", kind="obs-test"
        ).value
        misses = registry.counter(
            "repro_cache_misses_total", kind="obs-test"
        ).value
        assert hits - hits_before == 3
        assert misses - misses_before == 3
        names = [s.name for s in installed_tracer.spans()]
        assert names.count("campaign.cache_scan") == 2
        assert names.count("campaign.evaluate") == 2


# -- the dashboard -------------------------------------------------------------------


class TestReport:
    def _bench_dir(self, tmp_path):
        bench = tmp_path / "benches"
        bench.mkdir()
        (bench / "BENCH_demo.json").write_text(json.dumps({
            "speedup": 21.5,
            "nested": {"inf_per_s": 125000.0},
            "environment": {"python": "3.11.7", "git_sha": "abc123"},
        }))
        (bench / "BENCH_broken.json").write_text("{not json")
        (bench / "ignored.json").write_text("{}")
        return bench

    def test_collect_is_sorted_and_fault_tolerant(self, tmp_path):
        benches = collect_bench_files(self._bench_dir(tmp_path))
        assert list(benches) == ["BENCH_broken.json", "BENCH_demo.json"]
        assert "unreadable" in benches["BENCH_broken.json"]["error"]

    def test_trace_aggregate_rolls_up_per_name(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for duration in (0.010, 0.030):
            with tracer.span("serve.flush"):
                clock.advance(duration)
        rows = trace_aggregate(tracer.spans())
        assert rows[0]["name"] == "serve.flush"
        assert rows[0]["count"] == 2
        assert rows[0]["total_ms"] == pytest.approx(40.0)
        assert rows[0]["max_ms"] == pytest.approx(30.0)

    def test_render_contains_benches_trace_and_charts(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("engine.kernel", tile=0):
            clock.advance(0.002)
        html_text = render_report(
            collect_bench_files(self._bench_dir(tmp_path)),
            trace_path="t.jsonl", spans=tracer.spans(),
        )
        for needle in ("BENCH_demo.json", "nested.inf_per_s",
                       "engine.kernel", "<svg", "repro dashboard",
                       "BENCH_broken.json"):
            assert needle in html_text
        assert "ignored.json" not in html_text

    def test_write_report_requires_real_inputs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_report(tmp_path / "out.html",
                         bench_dir=tmp_path / "missing")
        with pytest.raises(ConfigurationError):
            write_report(tmp_path / "out.html", bench_dir=tmp_path,
                         trace_path=tmp_path / "missing.jsonl")

    def test_empty_bench_dir_still_renders(self, tmp_path):
        out = write_report(tmp_path / "out.html", bench_dir=tmp_path)
        assert "No <code>BENCH_*.json</code>" in out.read_text()


class TestCliEndToEnd:
    def test_serve_trace_to_report(self, tmp_path, capsys):
        """The acceptance pipeline: traced serve run -> HTML dashboard."""
        from repro.obs.__main__ import main as obs_main
        from repro.serve.__main__ import main as serve_main

        trace = tmp_path / "serve.trace.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = serve_main([
            "--rate", "400", "--duration", "0.25", "--clients", "2",
            "--quality", "fast",
            "--trace-out", str(trace), "--metrics-out", str(metrics),
        ])
        assert code == 0
        assert isinstance(get_tracer(), NullTracer)  # scope restored

        spans = spans_from_jsonl(trace)
        names = {s.name for s in spans}
        assert {"serve.queue_wait", "serve.flush",
                "engine.kernel"} <= names
        samples = parse_prometheus_text(metrics.read_text())
        assert samples[("repro_serving_completed_total", ())] == 100
        # The run's metrics lived in the scope's own registry: the
        # process-global registry must not have absorbed them, so two
        # CLI runs in one process can never accumulate.
        assert get_registry().counter(
            "repro_serving_completed_total"
        ).value == 0

        bench = tmp_path / "benches"
        bench.mkdir()
        (bench / "BENCH_demo.json").write_text(json.dumps({
            "speedup": 14.9, "environment": {"python": "3.11.7"},
        }))
        out = tmp_path / "report.html"
        code = obs_main([
            "report", "--out", str(out),
            "--bench-dir", str(bench), "--trace", str(trace),
        ])
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        html_text = out.read_text()
        for needle in ("BENCH_demo.json", "serve.flush", "<svg",
                       "repro dashboard"):
            assert needle in html_text

    def test_report_cli_rejects_missing_trace(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        code = obs_main([
            "report", "--out", str(tmp_path / "r.html"),
            "--bench-dir", str(tmp_path),
            "--trace", str(tmp_path / "nope.jsonl"),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err
