"""System configuration and result containers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.system.config import (
    CLOCK_ENERGY_PER_TILE_CYCLE_PJ,
    PAPER_LAYER_SIZES,
    PERIPHERY_STATIC_MW,
    SystemConfig,
)
from repro.system.energy import SystemMetrics


class TestSystemConfig:
    def test_defaults_match_paper(self):
        config = SystemConfig()
        assert config.layer_sizes == (768, 256, 256, 256, 10)
        assert config.cell_type is CellType.C1RW4R
        assert config.vprech == 0.500

    def test_paper_layer_sizes_constant(self):
        assert PAPER_LAYER_SIZES[0] == 768
        assert PAPER_LAYER_SIZES[-1] == 10

    def test_calibration_constants_positive(self):
        assert CLOCK_ENERGY_PER_TILE_CYCLE_PJ > 0.0
        assert PERIPHERY_STATIC_MW > 0.0

    def test_rejects_single_layer(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(layer_sizes=(128,))

    def test_rejects_zero_samples(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(sample_images=0)

    def test_rejects_bad_vprech(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(vprech=0.9)


class TestResultContainers:
    def _metrics(self) -> SystemMetrics:
        return SystemMetrics(
            cell_type_label="1RW+4R",
            clock_period_ns=1.2346,
            cycles_per_inference=17.5,
            latency_ns=80.0,
            inference_time_ns=21.6,
            dynamic_energy_pj=366.0,
            clock_energy_pj=142.0,
            leakage_energy_pj=98.0,
            area_um2=19_900.0,
        )

    def test_hardware_report_summary(self):
        from repro.core.results import HardwareReport

        report = HardwareReport(images=10, metrics=self._metrics())
        text = report.summary()
        assert "1RW+4R" in text
        assert "MInf/s" in text
        assert report.energy_per_inference_pj == pytest.approx(606.0)
        assert report.throughput_minf_s == pytest.approx(46.3, abs=0.2)

    def test_classification_result_accuracy(self):
        from repro.core.results import ClassificationResult, HardwareReport

        report = HardwareReport(images=4, metrics=self._metrics())
        result = ClassificationResult(
            predictions=np.array([1, 2, 3, 4]),
            labels=np.array([1, 2, 0, 4]),
            report=report,
        )
        assert result.accuracy == pytest.approx(0.75)

    def test_metrics_power_consistent_with_paper_point(self):
        m = self._metrics()
        assert m.power_mw == pytest.approx(28.1, abs=0.2)
