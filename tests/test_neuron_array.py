"""Vectorised neuron array vs the bit-accurate scalar neuron."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.neuron.array import NeuronArray
from repro.neuron.if_neuron import IFNeuron


class TestEquivalenceWithScalarNeuron:
    @given(st.integers(min_value=0, max_value=2**30), st.integers(0, 2**30))
    @settings(max_examples=50, deadline=None)
    def test_matches_if_neuron(self, bit_seed, valid_seed):
        """Every neuron of the array behaves like an IFNeuron."""
        ports, n, cycles = 4, 6, 3
        rng_bits = np.random.default_rng(bit_seed)
        rng_valid = np.random.default_rng(valid_seed)
        thresholds = np.arange(-2, n - 2)
        array = NeuronArray(thresholds.copy(), ports=ports)
        scalars = [IFNeuron(int(t), ports=ports) for t in thresholds]
        for _ in range(cycles):
            bits = rng_bits.integers(0, 2, (ports, n))
            valid = rng_valid.integers(0, 2, ports).astype(bool)
            array.accumulate(bits, valid)
            for j, neuron in enumerate(scalars):
                neuron.accumulate(bits[:, j], valid)
        vm_array = array.membrane_potentials()
        assert vm_array.tolist() == [s.vmem for s in scalars]
        fired_array = array.fire_check()
        fired_scalar = [s.fire_check() for s in scalars]
        assert fired_array.tolist() == fired_scalar


class TestArrayBehaviour:
    def test_fire_sets_requests_and_resets(self):
        arr = NeuronArray(np.array([1, 3]), ports=2)
        arr.accumulate(np.array([[1, 1], [1, 1]]), np.array([1, 1]))
        fired = arr.fire_check()
        assert fired.tolist() == [True, False]
        assert (arr.membrane_potentials() == 0).all()
        assert arr.take_requests().tolist() == [True, False]
        assert not arr.spike_requests.any()

    def test_partial_rows_allowed(self):
        """Fewer granted spikes than ports is the common case."""
        arr = NeuronArray(np.zeros(3), ports=4)
        arr.accumulate(np.array([[1, 0, 1]]), np.array([1]))
        assert arr.membrane_potentials().tolist() == [1, -1, 1]

    def test_no_valid_rows_is_noop(self):
        arr = NeuronArray(np.zeros(3), ports=4)
        arr.accumulate(np.zeros((2, 3)), np.array([0, 0]))
        assert arr.accumulate_events == 0

    def test_energy_ledger(self):
        arr = NeuronArray(np.zeros(8), ports=4)
        arr.accumulate(np.ones((2, 8)), np.array([1, 1]))
        arr.fire_check()
        assert arr.dynamic_energy_pj() > 0.0

    def test_reset(self):
        arr = NeuronArray(np.zeros(4), ports=2)
        arr.accumulate(np.ones((1, 4)), np.array([1]))
        arr.fire_check()
        arr.reset()
        assert (arr.membrane_potentials() == 0).all()
        assert arr.dynamic_energy_pj() == 0.0

    def test_add_time_matches_port_count(self):
        arr = NeuronArray(np.zeros(4), ports=4)
        assert arr.add_time_ns == pytest.approx(0.40)


class TestValidation:
    def test_too_many_rows(self):
        arr = NeuronArray(np.zeros(4), ports=2)
        with pytest.raises(SimulationError):
            arr.accumulate(np.ones((3, 4)), np.ones(3, dtype=bool))

    def test_wrong_neuron_count(self):
        arr = NeuronArray(np.zeros(4), ports=2)
        with pytest.raises(SimulationError):
            arr.accumulate(np.ones((1, 5)), np.ones(1, dtype=bool))

    def test_valid_shape(self):
        arr = NeuronArray(np.zeros(4), ports=2)
        with pytest.raises(SimulationError):
            arr.accumulate(np.ones((2, 4)), np.ones(3, dtype=bool))

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            NeuronArray(np.array([]))

    def test_bad_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            NeuronArray(np.zeros(4), ports=0)
