"""Top-level EsamSystem facade."""

import numpy as np
import pytest

from repro.core.esam import EsamSystem
from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType


@pytest.fixture()
def random_system() -> EsamSystem:
    return EsamSystem.from_random((128, 64, 10), seed=1)


class TestFromRandom:
    def test_structure(self, random_system):
        assert random_system.snn.layer_sizes == [128, 64, 10]
        assert len(random_system.network.tiles) == 2

    def test_rejects_single_layer(self):
        with pytest.raises(ConfigurationError):
            EsamSystem.from_random((128,))


class TestClassification:
    def test_classify_spikes_matches_functional(self, random_system, rng):
        spikes = (rng.random((6, 128)) < 0.3).astype(np.uint8)
        result = random_system.classify_spikes(spikes)
        expected = random_system.functional_model().classify(spikes)
        assert (result.predictions == expected).all()

    def test_report_populated(self, random_system, rng):
        spikes = (rng.random((3, 128)) < 0.3).astype(np.uint8)
        result = random_system.classify_spikes(spikes)
        assert result.report.images == 3
        assert result.report.energy_per_inference_pj > 0.0
        assert result.report.throughput_minf_s > 0.0
        assert "MInf/s" in result.report.summary()

    def test_accuracy_with_labels(self, random_system, rng):
        spikes = (rng.random((4, 128)) < 0.3).astype(np.uint8)
        labels = random_system.functional_model().classify(spikes)
        result = random_system.classify_spikes(spikes, labels)
        assert result.accuracy == 1.0

    def test_accuracy_none_without_labels(self, random_system, rng):
        spikes = (rng.random((2, 128)) < 0.3).astype(np.uint8)
        assert random_system.classify_spikes(spikes).accuracy is None


class TestOnlineLearning:
    def test_engine_attached_to_layer(self, random_system):
        engine = random_system.online_learning_engine(layer=0)
        assert engine.tile is random_system.network.tiles[0]

    def test_layer_range_checked(self, random_system):
        with pytest.raises(ConfigurationError):
            random_system.online_learning_engine(layer=5)

    def test_learning_updates_hardware_weights(self, random_system, rng):
        from repro.learning.stdp import StochasticSTDP

        engine = random_system.online_learning_engine(
            layer=0, rule=StochasticSTDP(p_potentiate=1.0, p_depress=1.0)
        )
        pre = rng.integers(0, 2, 128).astype(np.uint8)
        engine.learn(pre, np.array([0]))
        assert (random_system.network.tiles[0].weight_matrix()[:, 0] == pre).all()


class TestPretrainedPath:
    def test_from_pretrained_fast(self, fast_model):
        system = EsamSystem(fast_model.snn, cell_type=CellType.C1RW4R)
        assert system.snn.layer_sizes == [768, 256, 256, 256, 10]

    def test_pretrained_accuracy_reasonable(self, fast_model):
        """Even the fast training preset should classify well."""
        assert fast_model.test_accuracy > 0.9

    def test_hardware_matches_functional_on_real_images(self, fast_model, rng):
        from repro.snn.encode import encode_images

        system = EsamSystem(fast_model.snn)
        images = fast_model.dataset.test_images[:5]
        result = system.classify_images(images)
        expected = fast_model.snn.to_model().classify(encode_images(images))
        assert (result.predictions == expected).all()

    def test_repr(self, fast_model):
        system = EsamSystem(fast_model.snn)
        assert "768:256:256:256:10" in repr(system)
