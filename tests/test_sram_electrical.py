"""Figure 6 / section 4.4.1: transposed-port electrical model."""

import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import ALL_CELLS, CellType
from repro.sram.electrical import C6T_CYCLE_NS, TransposedPortModel


@pytest.fixture(scope="module")
def model() -> TransposedPortModel:
    return TransposedPortModel()


class TestPaperAnchors:
    """Values the paper states explicitly (section 4.4.1)."""

    def test_6t_full_array_takes_257_8_ns(self, model):
        cost = model.full_array_update_cost(CellType.C6T)
        assert cost.total_time_ns == pytest.approx(257.8, rel=1e-3)

    def test_6t_full_array_takes_157_pj(self, model):
        cost = model.full_array_update_cost(CellType.C6T)
        assert cost.energy_pj == pytest.approx(157.0, rel=5e-3)

    def test_6t_full_array_is_2x128_accesses(self, model):
        cost = model.full_array_update_cost(CellType.C6T)
        assert cost.read_accesses == 128
        assert cost.write_accesses == 128

    def test_6t_cycle_time(self):
        assert C6T_CYCLE_NS == pytest.approx(257.8 / 256.0)

    def test_4r_column_read_9_9_ns(self, model):
        cost = model.column_update_cost(CellType.C1RW4R)
        assert cost.read_time_ns == pytest.approx(9.9, rel=1e-3)

    def test_4r_column_write_8_04_ns(self, model):
        cost = model.column_update_cost(CellType.C1RW4R)
        assert cost.write_time_ns == pytest.approx(8.04, rel=1e-3)

    def test_4r_column_uses_2x4_accesses(self, model):
        """Factor 4 from the 4:1 row mux (section 4.4.1)."""
        cost = model.column_update_cost(CellType.C1RW4R)
        assert cost.read_accesses == 4
        assert cost.write_accesses == 4

    def test_paper_quoted_ratios(self, model):
        """'9.9 ns (26.0x less)' and '8.04 ns (19.5x less)'."""
        baseline = model.full_array_update_cost(CellType.C6T)
        cost = model.column_update_cost(CellType.C1RW4R)
        assert baseline.total_time_ns / cost.read_time_ns == pytest.approx(
            26.0, rel=0.01
        )
        assert baseline.energy_pj / cost.write_time_ns == pytest.approx(
            19.5, rel=0.01
        )


class TestFigure6Trends:
    """Qualitative behaviour the paper describes for Figure 6."""

    def test_five_points_in_port_order(self, model):
        points = model.figure6()
        assert [p.cell_type for p in points] == list(ALL_CELLS)

    def test_write_time_monotonic_in_ports(self, model):
        times = [p.write_time_ns for p in model.figure6()]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_read_time_monotonic_in_ports(self, model):
        times = [p.read_time_ns for p in model.figure6()]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_write_energy_monotonic_in_ports(self, model):
        energies = [p.write_energy_pj for p in model.figure6()]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_read_energy_monotonic_in_ports(self, model):
        energies = [p.read_energy_pj for p in model.figure6()]
        assert all(b > a for a, b in zip(energies, energies[1:]))

    def test_first_port_jump_is_significant(self, model):
        """Paper: 'immediate and significant increase in both Write and
        Read times' from the narrowed WL."""
        t6 = model.access(CellType.C6T)
        t1 = model.access(CellType.C1RW1R)
        assert t1.write_time_ns > 1.8 * t6.write_time_ns
        assert t1.read_time_ns > 1.8 * t6.read_time_ns

    def test_write_energy_effect_stronger_than_read(self, model):
        """Paper: the port effect 'is stronger for the Write operation'
        (deeper V_WD raises the boosted swing)."""
        points = model.figure6()
        write_growth = points[-1].write_energy_pj / points[0].write_energy_pj
        read_growth = points[-1].read_energy_pj / points[0].read_energy_pj
        assert write_growth > 1.5 * read_growth

    def test_vwd_recorded_per_cell(self, model):
        vwds = [p.vwd_v for p in model.figure6()]
        assert all(b < a for a, b in zip(vwds, vwds[1:]))  # deeper with ports


class TestColumnUpdateScaling:
    def test_multiport_column_cheaper_than_6t(self, model):
        base = model.full_array_update_cost(CellType.C6T)
        for cell in ALL_CELLS[1:]:
            cost = model.column_update_cost(cell)
            assert cost.total_time_ns < base.total_time_ns / 10.0
            assert cost.energy_pj < base.energy_pj / 5.0

    def test_full_array_multiport_scales_by_columns(self, model):
        per_col = model.column_update_cost(CellType.C1RW2R)
        full = model.full_array_update_cost(CellType.C1RW2R)
        assert full.total_time_ns == pytest.approx(128 * per_col.total_time_ns)
        assert full.total_accesses == 128 * per_col.total_accesses


class TestConstruction:
    def test_smaller_array_supported(self):
        small = TransposedPortModel(rows=64, cols=64)
        access = small.access(CellType.C1RW4R)
        assert access.read_time_ns > 0.0

    def test_rejects_tiny_arrays(self):
        with pytest.raises(ConfigurationError):
            TransposedPortModel(rows=2, cols=64)
