"""Input encoding: corner crop (784 -> 768) and binarisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.encode import (
    CORNER_MASK,
    CROPPED_PIXELS,
    binarize,
    crop_corners,
    encode_images,
)


class TestCornerMask:
    def test_768_pixels_remain(self):
        """784 - 4 corners x 2x2 px = 768 = 6 x 128 (section 4.4.2)."""
        assert CROPPED_PIXELS == 768
        assert int(CORNER_MASK.sum()) == 768

    def test_corners_masked(self):
        for r in (0, 1, 26, 27):
            for c in (0, 1, 26, 27):
                assert not CORNER_MASK[r, c]

    def test_edges_kept(self):
        assert CORNER_MASK[0, 14]
        assert CORNER_MASK[14, 0]
        assert CORNER_MASK[13, 13]


class TestCropCorners:
    def test_single_image(self, rng):
        img = rng.random((28, 28))
        flat = crop_corners(img)
        assert flat.shape == (768,)
        assert np.allclose(flat, img[CORNER_MASK])

    def test_batch(self, rng):
        imgs = rng.random((5, 28, 28))
        flat = crop_corners(imgs)
        assert flat.shape == (5, 768)

    def test_corner_values_dropped(self):
        img = np.zeros((28, 28))
        img[0, 0] = 1.0  # corner pixel
        assert crop_corners(img).sum() == 0.0

    def test_shape_checked(self, rng):
        with pytest.raises(ConfigurationError):
            crop_corners(rng.random((27, 28)))


class TestBinarize:
    def test_threshold(self):
        out = binarize(np.array([0.2, 0.5, 0.9]), threshold=0.5)
        assert out.tolist() == [0, 1, 1]
        assert out.dtype == np.uint8

    def test_threshold_range_checked(self):
        with pytest.raises(ConfigurationError):
            binarize(np.zeros(3), threshold=1.5)


class TestEncodeImages:
    def test_end_to_end(self, rng):
        imgs = rng.random((3, 28, 28))
        spikes = encode_images(imgs, threshold=0.5)
        assert spikes.shape == (3, 768)
        assert set(np.unique(spikes)).issubset({0, 1})

    def test_matches_manual_pipeline(self, rng):
        imgs = rng.random((2, 28, 28))
        assert (encode_images(imgs) == binarize(crop_corners(imgs))).all()
