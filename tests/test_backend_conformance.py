"""Cross-backend conformance: every registered engine vs the reference.

The engine-backend registry (:mod:`repro.tile.backends`) promises that
every registered backend is *indistinguishable* from the per-cycle
reference: same predictions, same traces, same stats counters, same
energy ledgers, same persisted membranes.  This suite enforces that
promise structurally — the ``backend`` fixture (tests/conftest.py)
parametrizes over :func:`repro.tile.backends.backend_names`, so
registering a new backend automatically runs it through the full
equivalence matrix (cells x Vprech regimes x temporal mode x mid-run
engine switching x faulted weights) with zero test edits.

The dense-vs-cycle corner cases (mid-drain saturation, temporal
residue) stay in tests/test_engine_equivalence.py; this suite covers
the generic contract every backend must meet.
"""

from __future__ import annotations

import numpy as np
import pytest

from test_engine_equivalence import (
    LAYER_SIZES,
    assert_hardware_state_equal,
    make_network,
    sample_spikes,
)

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.tile.backends import (
    ENGINES,
    backend_factory,
    backend_names,
    engines_doc,
    register_backend,
)
from repro.tile.network import EsamNetwork, InferenceTrace

CELLS = [CellType.C6T, CellType.C1RW2R, CellType.C1RW4R]
VPRECHS = [0.5, 0.4]


def cycle_reference(spikes, cell_type=CellType.C1RW4R, vprech=0.5):
    """Scores + network after a sequential per-cycle run."""
    net = make_network(cell_type, vprech)
    trace = InferenceTrace()
    scores = np.stack([net.infer(row, trace) for row in spikes])
    return scores, net, trace


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"fast", "cycle", "bitpacked"} <= set(backend_names())

    def test_engines_view_behaves_like_the_historical_tuple(self):
        assert tuple(ENGINES) == backend_names()
        assert "fast" in ENGINES
        assert len(ENGINES) == len(backend_names())
        assert ENGINES[0] == backend_names()[0]
        assert ENGINES == backend_names()

    def test_unknown_backend_rejected_with_full_list(self):
        with pytest.raises(ConfigurationError, match="fast"):
            backend_factory("fats")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("fast", lambda network: None)

    @pytest.mark.parametrize("name", ["", None, 42])
    def test_invalid_backend_name_rejected(self, name):
        with pytest.raises(ConfigurationError, match="name"):
            register_backend(name, lambda network: None)

    def test_non_callable_factory_rejected(self):
        with pytest.raises(ConfigurationError, match="callable"):
            register_backend("not-a-factory", object())

    def test_engines_doc_lists_every_backend(self):
        doc = engines_doc()
        for name in backend_names():
            assert f'``engine="{name}"``' in doc

    def test_network_module_doc_derived_from_registry(self):
        import repro.tile.network as network_module

        for name in backend_names():
            assert f'``engine="{name}"``' in network_module.__doc__


class TestStaticConformance:
    @pytest.mark.parametrize("cell_type", CELLS, ids=[c.value for c in CELLS])
    @pytest.mark.parametrize("vprech", VPRECHS)
    def test_scores_traces_and_ledgers_match_reference(
            self, backend, cell_type, vprech, rng):
        spikes = sample_spikes(rng)
        ref_scores, ref_net, ref_trace = cycle_reference(
            spikes, cell_type, vprech
        )
        net = make_network(cell_type, vprech)
        trace = InferenceTrace()
        scores = net.infer_batch(spikes, trace, engine=backend)

        assert np.array_equal(scores, ref_scores)
        assert trace.images == ref_trace.images
        assert trace.per_tile_cycles == ref_trace.per_tile_cycles
        assert trace.total_spikes == ref_trace.total_spikes
        assert trace.total_grants == ref_trace.total_grants
        assert trace.total_array_reads == ref_trace.total_array_reads
        assert_hardware_state_equal(net, ref_net)

    def test_classify_batch_matches_sequential_classify(self, backend, rng):
        spikes = sample_spikes(rng, images=10)
        net = make_network(CellType.C1RW4R, 0.5)
        preds = net.classify_batch(spikes, engine=backend)
        sequential = np.array([net.classify(row) for row in spikes])
        assert np.array_equal(preds, sequential)

    def test_duplicate_batch_rows_score_identically(self, backend, rng):
        """Repeated spike patterns (the memoization hot path) must not
        diverge from their first occurrence."""
        base = sample_spikes(rng, images=3)
        spikes = np.concatenate([base, base[::-1], base])
        net = make_network(CellType.C1RW4R, 0.5)
        scores = net.infer_batch(spikes, engine=backend)
        assert np.array_equal(scores[:3], scores[3:6][::-1])
        assert np.array_equal(scores[:3], scores[6:9])

    def test_engine_instance_cached_per_backend(self, backend):
        net = make_network(CellType.C1RW4R, 0.5)
        first = net.engine_backend(backend)
        assert net.engine_backend(backend) is first
        assert net.engine_backend(backend, refresh=True) is not first


class TestTemporalConformance:
    def test_temporal_run_matches_reference(self, backend, rng):
        trains = rng.random((6, LAYER_SIZES[0])) < 0.25
        net = make_network(CellType.C1RW4R, 0.5)
        ref_net = make_network(CellType.C1RW4R, 0.5)
        result = net.run_temporal(trains, engine=backend)
        reference = ref_net.run_temporal(trains, engine="cycle")
        assert np.array_equal(result.spike_counts, reference.spike_counts)
        assert np.array_equal(result.final_vmem, reference.final_vmem)
        assert np.array_equal(
            result.hidden_spike_totals, reference.hidden_spike_totals
        )
        assert_hardware_state_equal(net, ref_net)

    def test_mid_run_switch_from_and_to_backend(self, backend, rng):
        """Any backend resumes from any other backend's membranes."""
        trains = rng.random((4, LAYER_SIZES[0])) < 0.25
        pure = make_network(CellType.C1RW4R, 0.5)
        pure.run_temporal(trains[:2], engine="cycle")
        pure_result = pure.run_temporal(trains[2:], engine="cycle")
        for first, second in [(backend, "cycle"), ("cycle", backend)]:
            mixed = make_network(CellType.C1RW4R, 0.5)
            mixed.run_temporal(trains[:2], engine=first)
            mixed_result = mixed.run_temporal(trains[2:], engine=second)
            assert np.array_equal(
                mixed_result.spike_counts, pure_result.spike_counts
            )
            assert np.array_equal(
                mixed_result.final_vmem, pure_result.final_vmem
            )
            assert_hardware_state_equal(mixed, pure)


class TestMutationConformance:
    def _flip_weights_in_place(self, net: EsamNetwork) -> None:
        tile = net.tiles[0]
        flipped = 1 - tile.weight_matrix()
        for rb in range(tile.mapping.row_blocks):
            for cb in range(tile.mapping.col_blocks):
                tile.macros[rb][cb].load_weights(
                    tile.mapping.block_weights(flipped, rb, cb)
                )
        tile.note_weight_update()

    def test_weight_version_bump_invalidates_cached_engine(
            self, backend, rng):
        """In-place weight flips must reach every backend's snapshot
        state (packed bitplanes, memoized schedules, signed matrices)."""
        spikes = sample_spikes(rng, images=4)
        net = make_network(CellType.C1RW4R, 0.5)
        stale = net.engine_backend(backend)
        net.infer_batch(spikes, engine=backend)  # warms caches/memos
        self._flip_weights_in_place(net)
        assert net.engine_backend(backend) is not stale

        reference = make_network(CellType.C1RW4R, 0.5)
        self._flip_weights_in_place(reference)
        net.reset_stats()  # drop the pre-mutation activity
        scores = net.infer_batch(spikes, engine=backend)
        ref_scores = np.stack([reference.infer(row) for row in spikes])
        assert np.array_equal(scores, ref_scores)
        assert_hardware_state_equal(net, reference)

    def test_faulted_weights_reach_backend(self, backend, rng):
        """Monte-Carlo bit flips (the reliability path) must be seen by
        every backend, not just the per-cycle one."""
        from repro.sram.faults import FaultInjector

        spikes = sample_spikes(rng, images=4)
        net = make_network(CellType.C1RW4R, 0.5)
        net.infer_batch(spikes, engine=backend)  # caches the engine
        injector = FaultInjector(
            [t.weight_matrix() for t in net.tiles],
            [np.concatenate([n.thresholds for n in t.neurons])
             for t in net.tiles],
        )
        flips = injector.inject_network(net, 0.05)
        assert flips > 0
        scores = net.infer_batch(spikes, engine=backend)
        reference = np.stack([net.infer(row) for row in spikes])
        assert np.array_equal(scores, reference)


class TestBitpackedInternals:
    """Backend-specific regression checks for the memoizing kernel."""

    def test_memo_is_dropped_with_the_kernel_on_weight_mutation(self, rng):
        spikes = sample_spikes(rng, images=4)
        net = make_network(CellType.C1RW4R, 0.5)
        net.infer_batch(spikes, engine="bitpacked")
        engine = net.engine_backend("bitpacked")
        warm = engine.memo_stats()
        assert warm["patterns"] > 0 and warm["misses"] > 0
        tile = net.tiles[0]
        flipped = 1 - tile.weight_matrix()
        for rb in range(tile.mapping.row_blocks):
            for cb in range(tile.mapping.col_blocks):
                tile.macros[rb][cb].load_weights(
                    tile.mapping.block_weights(flipped, rb, cb)
                )
        tile.note_weight_update()
        rebuilt = net.engine_backend("bitpacked")
        assert rebuilt is not engine
        assert rebuilt.memo_stats() == {
            "hits": 0, "misses": 0, "patterns": 0
        }
        packed = rebuilt._kernels[0].packed_planes
        assert not np.array_equal(packed, engine._kernels[0].packed_planes)

    def test_memo_limit_caps_stored_patterns(self, rng):
        from repro.tile.backends.bitpacked import _BitpackedKernel

        net = make_network(CellType.C1RW4R, 0.5)
        kernel = _BitpackedKernel(net.tiles[0], memo_limit=2)
        spikes = sample_spikes(rng, images=6)
        kernel._schedule_and_delta(spikes)
        assert len(kernel._memo) == 2
        # Patterns beyond the cap still compute correctly.
        again = kernel._schedule_and_delta(spikes)
        fresh = _BitpackedKernel(net.tiles[0])._schedule_and_delta(spikes)
        assert np.array_equal(again[0], fresh[0])
        assert np.array_equal(again[1], fresh[1])
