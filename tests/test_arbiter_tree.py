"""Tree priority encoder: functional equivalence with the flat encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arbiter.priority_encoder import priority_encode
from repro.arbiter.tree import TreePriorityEncoder
from repro.errors import ConfigurationError


class TestConstruction:
    def test_rejects_indivisible_width(self):
        with pytest.raises(ConfigurationError):
            TreePriorityEncoder(100, base_width=64)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            TreePriorityEncoder(0)

    def test_base_count(self):
        assert TreePriorityEncoder(128, 64).n_base == 2
        assert TreePriorityEncoder(128, 32).n_base == 4


class TestEquivalenceWithFlat:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=120, deadline=None)
    def test_matches_flat_32bit(self, pattern):
        tree = TreePriorityEncoder(32, base_width=8)
        r = np.array([(pattern >> i) & 1 for i in range(32)], dtype=bool)
        g_flat, m_flat, n_flat = priority_encode(r)
        g_tree, m_tree, n_tree = tree.encode(r)
        assert (g_flat == g_tree).all()
        assert (m_flat == m_tree).all()
        assert n_flat == n_tree

    def test_request_in_each_base_segment(self):
        tree = TreePriorityEncoder(128, base_width=64)
        for pos in (0, 63, 64, 127):
            r = np.zeros(128, dtype=bool)
            r[pos] = True
            grant, _, no_r = tree.encode(r)
            assert grant[pos] and not no_r

    def test_leftmost_across_segments(self):
        """Request in base 1 must lose to a request in base 0."""
        tree = TreePriorityEncoder(128, base_width=64)
        r = np.zeros(128, dtype=bool)
        r[70] = True
        r[10] = True
        grant, _, _ = tree.encode(r)
        assert grant[10] and not grant[70]

    def test_empty(self):
        tree = TreePriorityEncoder(64, base_width=16)
        grant, remaining, no_r = tree.encode(np.zeros(64, dtype=bool))
        assert no_r and not grant.any()


class TestGateLevel:
    @given(st.integers(min_value=0, max_value=2**24 - 1))
    @settings(max_examples=30, deadline=None)
    def test_netlist_matches_behavioral(self, pattern):
        tree = TreePriorityEncoder(24, base_width=8)
        net = tree.build_netlist()
        r = np.array([(pattern >> i) & 1 for i in range(24)], dtype=bool)
        g1, m1, n1 = tree.encode(r)
        g2, m2, n2 = tree.encode_gate_level(r, netlist=net)
        assert (g1 == g2).all()
        assert (m1 == m2).all()
        assert n1 == n2

    def test_shape_checked(self):
        tree = TreePriorityEncoder(16, base_width=8)
        with pytest.raises(ConfigurationError):
            tree.encode(np.zeros(8))
