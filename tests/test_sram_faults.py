"""Weight-memory fault injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.encode import encode_images
from repro.sram.bitcell import CellType
from repro.sram.faults import FaultInjector, flip_bits
from repro.tile.network import EsamNetwork


class TestFlipBits:
    def test_zero_rate_is_identity(self, rng):
        w = rng.integers(0, 2, (32, 32))
        faulty, flips = flip_bits(w, 0.0, rng)
        assert flips == 0
        assert (faulty == w).all()

    def test_full_rate_inverts(self, rng):
        w = rng.integers(0, 2, (16, 16))
        faulty, flips = flip_bits(w, 1.0, rng)
        assert flips == 256
        assert (faulty == 1 - w).all()

    def test_rate_statistics(self, rng):
        w = np.zeros((200, 200), dtype=np.uint8)
        _, flips = flip_bits(w, 0.1, rng)
        assert flips == pytest.approx(4000, rel=0.15)

    def test_result_binary(self, rng):
        w = rng.integers(0, 2, (16, 16))
        faulty, _ = flip_bits(w, 0.5, rng)
        assert set(np.unique(faulty)).issubset({0, 1})

    def test_input_not_mutated(self, rng):
        w = np.zeros((8, 8), dtype=np.uint8)
        flip_bits(w, 1.0, rng)
        assert (w == 0).all()

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            flip_bits(np.zeros((4, 4)), 1.5, rng)
        with pytest.raises(ConfigurationError):
            flip_bits(np.full((4, 4), 2), 0.1, rng)


class TestFaultSweep:
    def test_accuracy_degrades_monotonically_on_average(self, fast_model):
        injector = FaultInjector(
            fast_model.snn.weights,
            fast_model.snn.thresholds,
            fast_model.snn.output_bias,
        )
        spikes = encode_images(fast_model.dataset.test_images[:300])
        labels = fast_model.dataset.test_labels[:300]
        points = injector.sweep(
            spikes, labels, rates=(0.0, 1e-3, 5e-2, 0.3), trials=2
        )
        accuracies = [p.accuracy for p in points]
        # Clean accuracy first; heavy corruption approaches chance.
        assert accuracies[0] > 0.9
        assert accuracies[0] >= accuracies[1] - 0.02
        assert accuracies[-1] < 0.6

    def test_small_ber_is_tolerated(self, fast_model):
        """The BNN's redundancy absorbs isolated flips — a practical
        robustness property for always-on edge SRAM."""
        injector = FaultInjector(
            fast_model.snn.weights,
            fast_model.snn.thresholds,
            fast_model.snn.output_bias,
        )
        spikes = encode_images(fast_model.dataset.test_images[:300])
        labels = fast_model.dataset.test_labels[:300]
        points = injector.sweep(spikes, labels, rates=(0.0, 1e-3), trials=3)
        assert points[1].accuracy > points[0].accuracy - 0.03

    def test_zero_rate_reports_zero_flips(self, fast_model):
        injector = FaultInjector(
            fast_model.snn.weights, fast_model.snn.thresholds,
        )
        spikes = encode_images(fast_model.dataset.test_images[:20])
        points = injector.sweep(
            spikes, fast_model.dataset.test_labels[:20], rates=(0.0,)
        )
        assert points[0].flipped_bits == 0


class TestNetworkInjection:
    def test_inject_network_changes_weights(self, rng):
        weights = [rng.integers(0, 2, (128, 16)).astype(np.uint8)]
        net = EsamNetwork(weights, [np.full(16, 511)],
                          cell_type=CellType.C1RW2R)
        injector = FaultInjector(weights, [np.full(16, 511)])
        flips = injector.inject_network(net, 0.05)
        assert flips > 0
        # The network's stored bits now differ from the originals.
        stored = net.tiles[0].weight_matrix()
        assert (stored != weights[0]).sum() > 0

    def test_hardware_matches_faulty_functional_model(self, rng):
        """Faults injected into the macros behave exactly like faults in
        the functional model (same math, same storage)."""
        weights = [rng.integers(0, 2, (64, 12)).astype(np.uint8)]
        thresholds = [np.full(12, 511)]
        net = EsamNetwork(weights, thresholds, cell_type=CellType.C1RW4R)
        injector = FaultInjector(weights, thresholds, seed=3)
        injector.inject_network(net, 0.1)
        faulty_bits = net.tiles[0].weight_matrix()
        from repro.snn.model import BinarySNN

        reference = BinarySNN([faulty_bits], thresholds)
        spikes = rng.random(64) < 0.4
        assert np.allclose(
            net.infer(spikes), reference.forward(spikes)[0]
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector([], [])


class TestSeedDerivation:
    """Regression for the latent seed bug: a bare ``seed=77`` default
    used to ignore the network's ``HardwareConfig.seed``, so two
    configs differing only by seed shared fault masks."""

    def make_injectors(self, rng, seed_a: int, seed_b: int):
        from repro.hw.config import HardwareConfig

        weights = [rng.integers(0, 2, (64, 12)).astype(np.uint8)]
        thresholds = [np.full(12, 511)]
        return (
            FaultInjector(weights, thresholds,
                          config=HardwareConfig(seed=seed_a)),
            FaultInjector(weights, thresholds,
                          config=HardwareConfig(seed=seed_b)),
        )

    def test_configs_differing_only_by_seed_draw_different_masks(self, rng):
        a, b = self.make_injectors(rng, 1, 2)
        fa, _ = a.faulty_weights_for_trial(0.1, trial=0)
        fb, _ = b.faulty_weights_for_trial(0.1, trial=0)
        assert not np.array_equal(fa[0], fb[0])
        # The legacy sequential stream diverges too.
        ma, _ = a.faulty_model(0.1)
        mb, _ = b.faulty_model(0.1)
        assert not np.array_equal(ma.weights[0], mb.weights[0])

    def test_equal_config_seeds_reproduce_masks(self, rng):
        a, b = self.make_injectors(rng, 5, 5)
        fa, na = a.faulty_weights_for_trial(0.1, trial=3)
        fb, nb = b.faulty_weights_for_trial(0.1, trial=3)
        assert na == nb
        assert np.array_equal(fa[0], fb[0])

    def test_explicit_seed_overrides_config(self, rng):
        from repro.hw.config import HardwareConfig

        weights = [rng.integers(0, 2, (16, 8)).astype(np.uint8)]
        injector = FaultInjector(weights, [np.full(8, 511)], seed=9,
                                 config=HardwareConfig(seed=1))
        assert injector.seed == 9

    def test_legacy_default_seed_is_preserved(self, rng):
        from repro.sram.faults import LEGACY_FAULT_SEED

        weights = [rng.integers(0, 2, (16, 8)).astype(np.uint8)]
        assert (FaultInjector(weights, [np.full(8, 511)]).seed
                == LEGACY_FAULT_SEED)

    def test_negative_trial_rejected(self, rng):
        from repro.sram.faults import trial_seed_sequence

        with pytest.raises(ConfigurationError):
            trial_seed_sequence(42, 0.1, -1)
