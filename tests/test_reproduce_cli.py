"""One-shot reproduction driver."""

import csv

from repro.reproduce import reproduce_all


class TestReproduceAll:
    def test_writes_all_artifacts(self, tmp_path, fast_model):
        # Use the fast-quality model and a tiny sample to keep this quick.
        artifacts = reproduce_all(tmp_path, sample_images=3, quality="fast")
        for name in ("figure6", "figure7", "table2", "figure8", "summary"):
            assert name in artifacts
            assert artifacts[name].exists(), name

    def test_figure8_csv_has_five_cells(self, tmp_path, fast_model):
        artifacts = reproduce_all(tmp_path, sample_images=3, quality="fast")
        with artifacts["figure8"].open() as handle:
            rows = list(csv.DictReader(handle))
        assert [r["cell"] for r in rows] == [
            "1RW", "1RW+1R", "1RW+2R", "1RW+3R", "1RW+4R",
        ]

    def test_summary_contains_headline(self, tmp_path, fast_model):
        artifacts = reproduce_all(tmp_path, sample_images=3, quality="fast")
        text = artifacts["summary"].read_text()
        assert "headline claims" in text
        assert "Figure 8" in text
