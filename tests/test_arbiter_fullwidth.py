"""Full-width (128-row, 4-port) arbiter: gate netlist vs behavioral.

The production configuration is exercised once at full scale: the
complete cascaded tree netlist (thousands of gates) must grant exactly
the four leftmost pending requests, stage by stage.
"""

import numpy as np
import pytest

from repro.arbiter.cascaded import MultiPortArbiter, build_cascaded_netlist


@pytest.fixture(scope="module")
def netlist():
    return build_cascaded_netlist(128, 4, tree=True, base_width=64)


class TestFullWidthEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_tree_netlist_matches_behavioral(self, netlist, seed):
        rng = np.random.default_rng(seed)
        requests = rng.random(128) < rng.uniform(0.05, 0.6)
        inputs = {"s0": True}
        inputs.update({f"r{n}": bool(requests[n]) for n in range(128)})
        values = netlist.evaluate(inputs)
        expected = np.flatnonzero(requests)[:4]
        for stage in range(4):
            grants = [n for n in range(128) if values[f"st{stage}_g{n}"]]
            if stage < expected.size:
                assert grants == [int(expected[stage])], (seed, stage)
            else:
                assert grants == []

    def test_sparse_single_request_far_right(self, netlist):
        inputs = {"s0": True}
        inputs.update({f"r{n}": n == 127 for n in range(128)})
        values = netlist.evaluate(inputs)
        assert values["st0_g127"]
        assert values["st1_noR"]

    def test_dense_all_requests(self, netlist):
        inputs = {"s0": True}
        inputs.update({f"r{n}": True for n in range(128)})
        values = netlist.evaluate(inputs)
        for stage in range(4):
            grants = [n for n in range(128) if values[f"st{stage}_g{n}"]]
            assert grants == [stage]

    def test_cycle_semantics_drain_128(self):
        arb = MultiPortArbiter(128, 4)
        arb.submit(np.ones(128, dtype=bool))
        trace = arb.drain()
        assert len(trace) == 32
        assert arb.grants_issued == 128
