"""Pretrained-model cache: save/load round-trips and presets."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learning.pretrained import (
    _load,
    _save,
    get_reference_model,
)


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path, fast_model):
        path = tmp_path / "model.npz"
        _save(path, fast_model.snn, fast_model.test_accuracy)
        loaded, accuracy = _load(path)
        assert accuracy == pytest.approx(fast_model.test_accuracy)
        assert loaded.layer_sizes == fast_model.snn.layer_sizes
        for a, b in zip(loaded.weights, fast_model.snn.weights):
            assert (a == b).all()
        for a, b in zip(loaded.thresholds, fast_model.snn.thresholds):
            assert (a == b).all()
        assert np.allclose(loaded.output_bias, fast_model.snn.output_bias)

    def test_loaded_model_classifies_identically(self, tmp_path, fast_model, rng):
        path = tmp_path / "model.npz"
        _save(path, fast_model.snn, fast_model.test_accuracy)
        loaded, _ = _load(path)
        x = (rng.random((16, 768)) < 0.2).astype(np.uint8)
        assert (
            loaded.to_model().classify(x)
            == fast_model.snn.to_model().classify(x)
        ).all()


class TestPresets:
    def test_memory_cache_returns_same_object(self):
        a = get_reference_model(quality="fast", seed=42)
        b = get_reference_model(quality="fast", seed=42)
        assert a is b

    def test_unknown_quality_rejected(self):
        with pytest.raises(ConfigurationError):
            get_reference_model(quality="gigantic")

    def test_fast_model_shape(self, fast_model):
        assert fast_model.snn.layer_sizes == [768, 256, 256, 256, 10]
        assert fast_model.dataset.n_test == 500
