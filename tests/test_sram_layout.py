"""Array floorplan: wire lengths, pitch rules, periphery."""

import pytest

from repro.errors import ConfigurationError, DesignRuleError
from repro.sram.bitcell import ALL_CELLS, CellType, bitcell_spec
from repro.sram.layout import (
    TRANSPOSED_MUX_FACTOR,
    ArrayFloorplan,
    CellLayout,
    floorplan,
)


class TestCellLayout:
    def test_pitch_ok_up_to_four_ports(self):
        for cell in ALL_CELLS:
            CellLayout(bitcell_spec(cell)).check_pitch()

    def test_rbl_tracks(self):
        assert CellLayout(bitcell_spec(CellType.C1RW4R)).rbl_tracks_available() == 4
        assert CellLayout(bitcell_spec(CellType.C6T)).rbl_tracks_available() == 0


class TestDimensions:
    def test_core_area(self):
        plan = floorplan(CellType.C6T, 128, 128)
        assert plan.core_area_um2 == pytest.approx(128 * 128 * 0.01512)

    def test_width_scales_with_cell(self):
        w6 = floorplan(CellType.C6T).core_width_um
        w4 = floorplan(CellType.C1RW4R).core_width_um
        assert w4 == pytest.approx(2.625 * w6)

    def test_height_independent_of_cell(self):
        h6 = floorplan(CellType.C6T).core_height_um
        h4 = floorplan(CellType.C1RW4R).core_height_um
        assert h4 == pytest.approx(h6)


class TestWires:
    def test_inference_wordline_spans_columns(self):
        plan = floorplan(CellType.C1RW2R, 128, 64)
        assert plan.inference_wordline().length_um == pytest.approx(
            64 * plan.cell.width_um
        )

    def test_inference_bitline_spans_rows(self):
        plan = floorplan(CellType.C1RW2R, 96, 128)
        assert plan.inference_bitline().length_um == pytest.approx(
            96 * plan.cell.height_um
        )

    def test_transposed_wordline_narrowed_on_multiport(self):
        plan = floorplan(CellType.C1RW1R)
        assert plan.transposed_wordline().width_factor < 1.0
        plan6 = floorplan(CellType.C6T)
        assert plan6.transposed_wordline().width_factor == 1.0


class TestPeriphery:
    def test_mux_factor_is_four(self):
        """Section 3.2: row-muxing by a factor of four."""
        assert TRANSPOSED_MUX_FACTOR == 4

    def test_column_access_count(self):
        """Transposable: 4 accesses per column; 6T: one per row."""
        assert floorplan(CellType.C1RW4R).column_access_count() == 4
        assert floorplan(CellType.C6T, rows=128).column_access_count() == 128

    def test_inference_sa_per_column_per_port(self):
        plan = floorplan(CellType.C1RW3R, 128, 128)
        assert plan.inference_sense_amp_count == 128 * 3

    def test_transposed_sa_muxed(self):
        plan = floorplan(CellType.C1RW4R, 128, 128)
        assert plan.transposed_sense_amp_count == 32

    def test_macro_area_exceeds_core(self):
        for cell in ALL_CELLS:
            plan = floorplan(cell)
            assert plan.macro_area_um2() > plan.core_area_um2

    def test_periphery_grows_with_ports(self):
        p1 = floorplan(CellType.C1RW1R).periphery_area_um2()
        p4 = floorplan(CellType.C1RW4R).periphery_area_um2()
        assert p4 > p1


class TestValidation:
    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            ArrayFloorplan(cell=bitcell_spec(CellType.C6T), rows=0, cols=128)
