"""Unit tests for the batched drain-schedule primitives (repro.tile.fast)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arbiter.cascaded import MultiPortArbiter
from repro.errors import ConfigurationError
from repro.tile.fast import (
    block_pending_counts,
    drain_schedule,
    grant_cycle_of_rows,
    saturating_accumulate,
    signed_weights,
)


class TestBlockPendingCounts:
    def test_counts_full_and_partial_blocks(self):
        spikes = np.zeros((2, 300), dtype=bool)
        spikes[0, :5] = True        # block 0
        spikes[0, 128:131] = True   # block 1
        spikes[1, 256:300] = True   # partial block 2 (44 rows wide)
        counts = block_pending_counts(spikes)
        assert counts.shape == (2, 3)
        assert counts[0].tolist() == [5, 3, 0]
        assert counts[1].tolist() == [0, 0, 44]

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            block_pending_counts(np.zeros(128, dtype=bool))


class TestDrainSchedule:
    @pytest.mark.parametrize("ports", [1, 2, 4])
    def test_matches_arbiter_drain(self, ports, rng):
        """Closed-form cycles/grants equal the clocked arbiter's."""
        for density in (0.0, 0.05, 0.3, 1.0):
            spikes = rng.random((4, 128)) < density
            schedule = drain_schedule(spikes, ports)
            for b in range(4):
                arbiter = MultiPortArbiter(128, ports)
                arbiter.submit(spikes[b])
                trace = arbiter.drain()
                assert schedule.cycles[b] == len(trace)
                assert schedule.grants[b] == sum(g.grant_count for g in trace)
                assert schedule.pending_per_block[b, 0] == spikes[b].sum()

    def test_cycles_are_max_over_blocks(self, rng):
        spikes = np.zeros((1, 256), dtype=bool)
        spikes[0, :9] = True    # block 0: ceil(9/4) = 3 cycles
        spikes[0, 128] = True   # block 1: 1 cycle
        schedule = drain_schedule(spikes, ports=4)
        assert schedule.cycles[0] == 3
        assert schedule.total_grants == 10

    def test_empty_batch_row_takes_zero_cycles(self):
        schedule = drain_schedule(np.zeros((1, 128), dtype=bool), ports=4)
        assert schedule.cycles[0] == 0
        assert schedule.grants[0] == 0

    def test_rejects_bad_ports(self):
        with pytest.raises(ConfigurationError):
            drain_schedule(np.zeros((1, 128), dtype=bool), ports=0)


class TestGrantCycleOfRows:
    @pytest.mark.parametrize("ports", [1, 3, 4])
    def test_rank_formula_matches_arbiter_trace(self, ports, rng):
        """rank(r among pending) // ports is the exact grant cycle."""
        spikes = rng.random(128) < 0.25
        rows, cycles = grant_cycle_of_rows(spikes, ports)
        arbiter = MultiPortArbiter(128, ports)
        arbiter.submit(spikes)
        for cycle, grant in enumerate(arbiter.drain()):
            mask = cycles == cycle
            assert np.array_equal(rows[mask], grant.granted_rows)

    def test_priority_order(self):
        spikes = np.zeros(16, dtype=bool)
        spikes[[2, 5, 7, 11, 13]] = True
        rows, cycles = grant_cycle_of_rows(spikes, ports=2)
        assert rows.tolist() == [2, 5, 7, 11, 13]
        assert cycles.tolist() == [0, 0, 1, 1, 2]


class TestSaturatingAccumulate:
    def test_matmul_matches_per_spike_sum(self, rng):
        weights = rng.integers(0, 2, (32, 8)).astype(np.uint8)
        spikes = (rng.random((5, 32)) < 0.5).astype(bool)
        signed = signed_weights(weights)
        out = saturating_accumulate(
            np.zeros((5, 8), dtype=np.int64), spikes, signed, -2048, 2047
        )
        expected = spikes.astype(np.int64) @ (2 * weights.astype(np.int64) - 1)
        assert np.array_equal(out, expected)

    def test_clips_to_register_rails(self):
        signed = signed_weights(np.ones((4, 2), dtype=np.uint8))
        spikes = np.ones((1, 4), dtype=bool)
        out = saturating_accumulate(
            np.array([[2046, -3]], dtype=np.int64), spikes, signed, -4, 2047
        )
        assert out.tolist() == [[2047, 1]]
