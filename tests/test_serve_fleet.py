"""The multi-process serving fleet, unit to end-to-end.

Covers the three fleet layers bottom-up: the shared-memory spike ring
(layout, round trips, boundary errors), the worker-pool plumbing
(consistent-hash router, picklable model payloads), and the
:class:`FleetServer` fabric itself — admission control per SLO class,
dispatch determinism, rolling hot-swap, crash supervision, and the
``python -m repro.serve --workers N`` CLI path.

Everything spawning real worker processes is marked ``multiprocess``
(tight hard timeout; see the root ``conftest.py``).
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    QueueFullError,
    ServingError,
)
from repro.resilience import SupervisorPolicy
from repro.serve import (
    DEFAULT_SLO_CLASSES,
    BatchPolicy,
    ConsistentHashRouter,
    FleetServer,
    ModelPayload,
    ModelRegistry,
    RingGeometry,
    ServingMetrics,
    SloClass,
    SpikeRing,
)
from repro.tile.backends.bitpacked import pack_spike_rows, packed_width

from tests.test_serve import random_network, random_spikes


def fleet(registry=None, n_workers=2, **kwargs):
    if registry is None:
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
    kwargs.setdefault(
        "policy", BatchPolicy(max_batch_size=16, max_wait_ms=1.0)
    )
    return FleetServer(registry, n_workers=n_workers, **kwargs)


def serve_all(server, spikes, slo_class="batch", timeout=60.0):
    futures = [
        server.submit("demo", row, slo_class=slo_class) for row in spikes
    ]
    return np.array([f.result(timeout=timeout) for f in futures])


# -- shared-memory ring ---------------------------------------------------------------


class TestRingGeometry:
    def test_shape_arithmetic(self):
        g = RingGeometry(4, 8, 100)
        assert g.n_words == packed_width(100) == 2
        assert g.slot_words == 16
        assert g.total_bytes == 4 * 16 * 8
        assert g.to_tuple() == (4, 8, 100)
        assert g == RingGeometry(*g.to_tuple())
        assert g != RingGeometry(4, 8, 101)

    @pytest.mark.parametrize("bad", [
        (0, 8, 100), (4, 0, 100), (4, 8, 0),
    ])
    def test_rejects_degenerate_shapes(self, bad):
        with pytest.raises(ConfigurationError):
            RingGeometry(*bad)


class TestSpikeRing:
    def test_round_trip(self):
        ring = SpikeRing(RingGeometry(4, 8, 100))
        try:
            rows = random_spikes(5, width=100)
            assert ring.pack_into(2, rows) == 5
            assert np.array_equal(ring.read_rows(2, 5, 100), rows)
            packed = ring.read_packed(2, 5, 100)
            assert np.array_equal(packed, pack_spike_rows(rows))
        finally:
            ring.close()
            ring.unlink()

    def test_narrower_batches_use_leading_words(self):
        # One ring serves models of different widths: a narrower
        # batch occupies the leading words of its slot.
        ring = SpikeRing(RingGeometry(2, 4, 128))
        try:
            rows = random_spikes(3, width=64)
            ring.pack_into(0, rows)
            assert np.array_equal(ring.read_rows(0, 3, 64), rows)
        finally:
            ring.close()
            ring.unlink()

    def test_attach_by_name_sees_the_same_bytes(self):
        geometry = RingGeometry(2, 4, 64)
        ring = SpikeRing(geometry)
        try:
            rows = random_spikes(4)
            ring.pack_into(1, rows)
            attached = SpikeRing(geometry, name=ring.name, create=False)
            try:
                assert np.array_equal(attached.read_rows(1, 4), rows)
            finally:
                attached.close()
        finally:
            ring.close()
            ring.unlink()

    def test_attach_requires_name_and_capacity(self):
        ring = SpikeRing(RingGeometry(2, 4, 64))
        try:
            with pytest.raises(ConfigurationError, match="name"):
                SpikeRing(RingGeometry(2, 4, 64), create=False)
            with pytest.raises(ConfigurationError, match="bytes"):
                SpikeRing(RingGeometry(64, 64, 512), name=ring.name,
                          create=False)
        finally:
            ring.close()
            ring.unlink()

    def test_boundary_errors(self):
        ring = SpikeRing(RingGeometry(2, 4, 64))
        try:
            with pytest.raises(ConfigurationError, match="slot"):
                ring.pack_into(2, random_spikes(1))
            with pytest.raises(ConfigurationError, match="rows"):
                ring.pack_into(0, random_spikes(5))
            with pytest.raises(ConfigurationError, match="width"):
                ring.pack_into(0, random_spikes(1, width=65))
            with pytest.raises(ConfigurationError, match="n_rows"):
                ring.read_packed(0, 5)
        finally:
            ring.close()
            ring.unlink()

    def test_unlink_is_creator_only_and_idempotent(self):
        ring = SpikeRing(RingGeometry(1, 1, 64))
        attached = SpikeRing(ring.geometry, name=ring.name, create=False)
        attached.close()
        attached.unlink()  # non-creator: no-op
        ring.close()
        ring.unlink()
        ring.unlink()  # second unlink tolerated


class TestPackInto:
    def test_out_parameter_packs_in_place(self):
        rows = random_spikes(3, width=100)
        out = np.zeros((3, packed_width(100)), dtype=np.uint64)
        result = pack_spike_rows(rows, out=out)
        assert result is out
        assert np.array_equal(out, pack_spike_rows(rows))

    def test_out_parameter_rejects_mismatches(self):
        rows = random_spikes(3, width=100)
        with pytest.raises(ConfigurationError, match="shape"):
            pack_spike_rows(
                rows, out=np.zeros((3, 5), dtype=np.uint64)
            )
        with pytest.raises(ConfigurationError, match="uint64"):
            pack_spike_rows(
                rows,
                out=np.zeros((3, packed_width(100)), dtype=np.int64),
            )


# -- consistent-hash router -----------------------------------------------------------


class TestConsistentHashRouter:
    def test_deterministic_for_fixed_seed(self):
        a = ConsistentHashRouter(range(4), seed=7)
        b = ConsistentHashRouter(range(4), seed=7)
        assert all(a.route(k) == b.route(k) for k in range(500))

    def test_seed_changes_the_assignment(self):
        a = ConsistentHashRouter(range(4), seed=0)
        b = ConsistentHashRouter(range(4), seed=1)
        assert any(a.route(k) != b.route(k) for k in range(500))

    def test_dead_replica_remaps_only_its_own_keys(self):
        router = ConsistentHashRouter(range(4), seed=3)
        before = {k: router.route(k) for k in range(1000)}
        live = {0, 1, 3}
        for key, owner in before.items():
            after = router.route(key, live)
            if owner != 2:
                assert after == owner  # survivors keep their keys
            else:
                assert after in live

    def test_spread_is_roughly_balanced(self):
        router = ConsistentHashRouter(range(4), seed=0)
        counts = np.bincount(
            [router.route(k) for k in range(4000)], minlength=4
        )
        assert counts.min() > 0.5 * 1000 and counts.max() < 1.7 * 1000

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ConsistentHashRouter([])
        with pytest.raises(ConfigurationError, match="duplicate"):
            ConsistentHashRouter([0, 0])
        with pytest.raises(ConfigurationError, match="vnodes"):
            ConsistentHashRouter([0], vnodes=0)
        with pytest.raises(ServingError, match="live"):
            ConsistentHashRouter([0, 1]).route("k", live=set())


# -- model payloads -------------------------------------------------------------------


class TestModelPayload:
    def test_rebuilt_network_is_bit_identical(self):
        network = random_network()
        payload = ModelPayload.from_network("demo", network)
        rebuilt = payload.build()
        spikes = random_spikes(32)
        assert np.array_equal(
            rebuilt.classify_batch(spikes), network.classify_batch(spikes)
        )
        assert payload.versions == tuple(
            t.weight_version for t in network.tiles
        )


# -- SLO classes ----------------------------------------------------------------------


class TestSloClass:
    def test_stock_classes(self):
        assert set(DEFAULT_SLO_CLASSES) == {
            "batch", "default", "interactive"
        }
        assert DEFAULT_SLO_CLASSES["interactive"].deadline_ms == 50.0

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "x", "max_queue_depth": 0},
        {"name": "x", "deadline_ms": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SloClass(**kwargs)


# -- fabric construction --------------------------------------------------------------


class TestFleetConstruction:
    def test_rejects_bad_configuration(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        with pytest.raises(ConfigurationError, match="n_workers"):
            FleetServer(registry, n_workers=0)
        with pytest.raises(ConfigurationError, match="engine"):
            FleetServer(registry, engine="nope")
        with pytest.raises(ConfigurationError, match="default"):
            FleetServer(
                registry, slo_classes={"batch": SloClass("batch")}
            )

    def test_start_requires_a_registered_model(self):
        with pytest.raises(ConfigurationError, match="no models"):
            FleetServer(ModelRegistry()).start()

    def test_submit_requires_running_fleet(self):
        server = fleet()
        with pytest.raises(ServingError, match="not running"):
            server.submit("demo", random_spikes(1)[0])

    def test_submit_validates_at_the_edge(self):
        server = fleet()
        with pytest.raises(ConfigurationError, match="SLO class"):
            server.submit("demo", random_spikes(1)[0], slo_class="nope")
        with pytest.raises(ConfigurationError, match="deadline_ms"):
            server.submit("demo", random_spikes(1)[0], deadline_ms=0.0)
        with pytest.raises(ServingError, match="demo2"):
            server.submit("demo2", random_spikes(1)[0])
        with pytest.raises(ConfigurationError, match="shape"):
            server.submit("demo", np.zeros(65, dtype=bool))


# -- end-to-end serving ---------------------------------------------------------------


@pytest.mark.multiprocess
class TestFleetServing:
    def test_serves_bit_identically_to_offline(self):
        registry = ModelRegistry()
        network = random_network()
        registry.register_network("demo", network)
        spikes = random_spikes(150)
        with fleet(registry) as server:
            served = serve_all(server, spikes)
        assert np.array_equal(served, network.classify_batch(spikes))
        m = server.metrics
        assert m.submitted == 150
        assert m.submitted == m.completed + m.failed + m.shed

    def test_classify_convenience(self):
        registry = ModelRegistry()
        network = random_network()
        registry.register_network("demo", network)
        spikes = random_spikes(1)
        with fleet(registry, n_workers=1) as server:
            assert server.classify("demo", spikes[0]) == \
                network.classify(spikes[0])

    def test_two_models_share_the_ring(self):
        registry = ModelRegistry()
        wide = random_network(layers=(128, 32, 10), seed=0)
        narrow = random_network(layers=(64, 16, 10), seed=1)
        registry.register_network("wide", wide)
        registry.register_network("narrow", narrow)
        wide_spikes = random_spikes(40, width=128, seed=5)
        narrow_spikes = random_spikes(40, width=64, seed=6)
        with fleet(registry) as server:
            wide_futures = [
                server.submit("wide", row, slo_class="batch")
                for row in wide_spikes
            ]
            narrow_futures = [
                server.submit("narrow", row, slo_class="batch")
                for row in narrow_spikes
            ]
            wide_served = [f.result(timeout=60) for f in wide_futures]
            narrow_served = [f.result(timeout=60) for f in narrow_futures]
        assert np.array_equal(
            wide_served, wide.classify_batch(wide_spikes)
        )
        assert np.array_equal(
            narrow_served, narrow.classify_batch(narrow_spikes)
        )

    def test_queue_full_per_slo_class(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        tight = {
            "default": SloClass("default", max_queue_depth=4),
            "roomy": SloClass("roomy", max_queue_depth=1024),
        }
        spikes = random_spikes(16)
        # A generous batching window keeps admitted requests queued
        # while we probe the depth limits.
        server = fleet(
            registry, slo_classes=tight,
            policy=BatchPolicy(max_batch_size=64, max_wait_ms=200.0),
        )
        with server:
            futures = [server.submit("demo", row) for row in spikes[:4]]
            with pytest.raises(QueueFullError, match="default"):
                server.submit("demo", spikes[4])
            # The full default class must not poison other classes.
            roomy = server.submit("demo", spikes[5], slo_class="roomy")
            for future in [*futures, roomy]:
                future.result(timeout=60)
        assert server.metrics.rejected == 1

    def test_deadline_defaults_to_the_slo_class(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        classes = {
            "default": SloClass("default", deadline_ms=60_000.0),
        }
        with fleet(registry, slo_classes=classes, n_workers=1) as server:
            future = server.submit("demo", random_spikes(1)[0])
            assert future.result(timeout=60) >= 0
        # The class deadline was applied and not hit: nothing shed.
        assert server.metrics.shed == 0
        assert server.metrics.completed == 1

    def test_describe_reports_workers(self):
        with fleet(n_workers=2) as server:
            info = server.describe()
            assert info["n_workers"] == 2
            assert len(info["workers"]) == 2
            assert {w["worker_id"] for w in info["workers"]} == {0, 1}

    def test_stop_without_drain_fails_pending_explicitly(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        server = fleet(
            registry,
            policy=BatchPolicy(max_batch_size=64, max_wait_ms=500.0),
        )
        server.start()
        futures = [
            server.submit("demo", row, slo_class="batch")
            for row in random_spikes(8)
        ]
        server.stop(drain=False)
        outcomes = set()
        for future in futures:
            try:
                future.result(timeout=10)
                outcomes.add("completed")
            except ServingError:
                outcomes.add("failed")
        assert outcomes  # every future resolved, none left hanging
        m = server.metrics
        assert m.submitted == m.completed + m.failed + m.shed == 8


@pytest.mark.multiprocess
class TestWorkerCountInvariance:
    def test_predictions_identical_across_worker_counts(self):
        network = random_network()
        spikes = random_spikes(120)
        expected = network.classify_batch(spikes)
        for n_workers in (1, 2, 4):
            registry = ModelRegistry()
            registry.register_network("demo", random_network())
            with fleet(registry, n_workers=n_workers) as server:
                served = serve_all(server, spikes)
            assert np.array_equal(served, expected), n_workers


# -- rolling hot-swap -----------------------------------------------------------------


@pytest.mark.multiprocess
class TestRollingSwap:
    def test_swap_rolls_new_weights_to_every_replica(self):
        registry = ModelRegistry()
        first = random_network(seed=0)
        second = random_network(seed=1)
        registry.register_network("demo", first)
        spikes = random_spikes(60)
        with fleet(registry) as server:
            before = serve_all(server, spikes)
            assert server.swap("demo", second) is first
            after = serve_all(server, spikes)
        assert np.array_equal(before, first.classify_batch(spikes))
        assert np.array_equal(after, second.classify_batch(spikes))

    def test_push_weights_ships_in_place_mutations(self):
        registry = ModelRegistry()
        network = random_network()
        registry.register_network("demo", network)
        spikes = random_spikes(40)
        with fleet(registry) as server:
            before = serve_all(server, spikes)
            # Mutate in place the way online learning does — through
            # the macros, then note_weight_update (bumps
            # weight_version) — and roll the snapshot out.
            tile = network.tiles[0]
            new = tile.weight_matrix()
            new[:, 0] ^= 1
            for rb, row in enumerate(tile.macros):
                for cb, macro in enumerate(row):
                    macro.load_weights(
                        tile.mapping.block_weights(new, rb, cb)
                    )
            tile.note_weight_update()
            versions = server.push_weights("demo")
            after = serve_all(server, spikes)
        assert versions == tuple(t.weight_version for t in network.tiles)
        assert np.array_equal(after, network.classify_batch(spikes))
        assert not np.array_equal(before, after)


# -- crash supervision ----------------------------------------------------------------


@pytest.mark.multiprocess
class TestCrashSupervision:
    def test_killed_worker_respawns_and_serving_continues(self):
        registry = ModelRegistry()
        network = random_network()
        registry.register_network("demo", network)
        spikes = random_spikes(60)
        with fleet(registry, n_workers=2) as server:
            first = serve_all(server, spikes[:20])
            victim = server.describe()["workers"][0]
            os.kill(
                server._workers[victim["worker_id"]].process.pid,
                signal.SIGKILL,
            )
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                info = server.describe()["workers"][victim["worker_id"]]
                if info["respawns"] == 1 and info["ready"]:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("worker was not respawned")
            second = serve_all(server, spikes[20:])
        assert np.array_equal(first, network.classify_batch(spikes[:20]))
        assert np.array_equal(second, network.classify_batch(spikes[20:]))
        m = server.metrics
        assert m.submitted == m.completed + m.failed + m.shed == 60

    def test_exhausted_budget_removes_replica_and_reroutes(self):
        registry = ModelRegistry()
        network = random_network()
        registry.register_network("demo", network)
        spikes = random_spikes(40)
        server = fleet(
            registry, n_workers=2,
            supervisor=SupervisorPolicy(retry_budget=0),
        )
        with server:
            served = serve_all(server, spikes[:10])
            victim = sorted(server.live_workers())[0]
            os.kill(server._workers[victim].process.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if server.live_workers() == {1 - victim}:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("dead replica was not removed")
            # The survivor serves the whole stream, still bit-identical.
            rest = serve_all(server, spikes[10:])
        assert np.array_equal(served, network.classify_batch(spikes[:10]))
        assert np.array_equal(rest, network.classify_batch(spikes[10:]))
        m = server.metrics
        assert m.submitted == m.completed + m.failed + m.shed == 40

    def test_fleet_metrics_label_replicas(self):
        metrics = ServingMetrics()
        with fleet(metrics=metrics) as server:
            serve_all(server, random_spikes(30))
        text = metrics.registry.to_text()
        assert "repro_fleet_batches_total" in text
        assert 'replica="' in text
        assert 'model="demo"' in text


# -- CLI ------------------------------------------------------------------------------


@pytest.mark.multiprocess
class TestFleetCli:
    def test_open_loop_fleet_run_verifies_and_reports(self, tmp_path,
                                                      capsys):
        from repro.serve.__main__ import main

        out = tmp_path / "report.json"
        code = main([
            "--rate", "120", "--duration", "1", "--open-loop",
            "--workers", "2", "--slo-class", "batch",
            "--json", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "fleet of 2 workers" in captured
        assert "OK (bit-identical)" in captured
        import json

        report = json.loads(out.read_text())
        assert report["workers"] == 2
        assert report["open_loop"] is True
        assert report["slo_class"] == "batch"
        assert report["accounted"] is True
        assert report["verified_vs_offline"] is True
        assert len(report["fleet"]["workers"]) == 2
