"""Bit-accurate IF neuron (paper Figure 5)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.neuron.if_neuron import IFNeuron, neuron_add_time_ns, neuron_timing


class TestAccumulate:
    def test_valid_bits_decode_plus_minus_one(self):
        n = IFNeuron(threshold=0, ports=4)
        delta = n.accumulate(
            bits=np.array([1, 0, 1, 1]), valid=np.array([1, 1, 1, 1])
        )
        assert delta == 2  # +1 -1 +1 +1
        assert n.vmem == 2

    def test_invalid_ports_ignored(self):
        """The validity flag prevents unused ports being read as '1'."""
        n = IFNeuron(threshold=0, ports=4)
        delta = n.accumulate(
            bits=np.array([1, 1, 1, 1]), valid=np.array([1, 0, 0, 0])
        )
        assert delta == 1
        assert n.vmem == 1

    def test_all_invalid_is_noop(self):
        n = IFNeuron(threshold=0, ports=2)
        assert n.accumulate(np.array([1, 1]), np.array([0, 0])) == 0

    def test_accumulates_over_cycles(self):
        n = IFNeuron(threshold=10, ports=2)
        for _ in range(3):
            n.accumulate(np.array([1, 1]), np.array([1, 1]))
        assert n.vmem == 6

    def test_vmem_saturates(self):
        n = IFNeuron(threshold=0, ports=4, vmem_bits=4)  # range [-8, 7]
        for _ in range(10):
            n.accumulate(np.array([1, 1, 1, 1]), np.array([1, 1, 1, 1]))
        assert n.vmem == 7

    def test_shape_checked(self):
        n = IFNeuron(threshold=0, ports=4)
        with pytest.raises(SimulationError):
            n.accumulate(np.array([1, 0]), np.array([1, 0]))


class TestFire:
    def test_fires_at_threshold(self):
        n = IFNeuron(threshold=2, ports=2)
        n.accumulate(np.array([1, 1]), np.array([1, 1]))
        assert n.fire_check()
        assert n.spike_request
        assert n.vmem == 0

    def test_no_fire_below_threshold(self):
        n = IFNeuron(threshold=5, ports=2)
        n.accumulate(np.array([1, 1]), np.array([1, 1]))
        assert not n.fire_check()
        assert not n.spike_request

    def test_vmem_resets_even_without_fire(self):
        """Time-static task: the membrane clears every inference."""
        n = IFNeuron(threshold=100, ports=2)
        n.accumulate(np.array([1, 1]), np.array([1, 1]))
        n.fire_check()
        assert n.vmem == 0

    def test_negative_threshold_fires_on_zero(self):
        n = IFNeuron(threshold=-1, ports=2)
        assert n.fire_check()

    def test_grant_clears_request(self):
        n = IFNeuron(threshold=0, ports=2)
        n.fire_check()
        n.grant()
        assert not n.spike_request

    def test_grant_without_request_is_error(self):
        n = IFNeuron(threshold=5, ports=2)
        with pytest.raises(SimulationError):
            n.grant()

    def test_reset(self):
        n = IFNeuron(threshold=0, ports=2)
        n.accumulate(np.array([1, 0]), np.array([1, 1]))
        n.fire_check()
        n.reset()
        assert n.vmem == 0 and not n.spike_request


class TestTiming:
    def test_table2_neuron_components(self):
        """Values backing the Table-2 SRAM+neuron stage decomposition."""
        assert neuron_add_time_ns(1, multiport=False) == pytest.approx(0.20)
        assert neuron_add_time_ns(1, multiport=True) == pytest.approx(0.30)
        assert neuron_add_time_ns(2) == pytest.approx(0.35)
        assert neuron_add_time_ns(3) == pytest.approx(0.35)
        assert neuron_add_time_ns(4) == pytest.approx(0.40)

    def test_add_time_monotonic(self):
        times = [neuron_add_time_ns(p) for p in range(1, 9)]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_timing_datasheet(self):
        t = neuron_timing(4)
        assert t.ports == 4
        assert t.accumulate_energy_fj > 0.0

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigurationError):
            neuron_add_time_ns(0)


class TestValidation:
    def test_threshold_register_width(self):
        with pytest.raises(ConfigurationError):
            IFNeuron(threshold=600, vth_bits=10)

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigurationError):
            IFNeuron(threshold=0, ports=0)
