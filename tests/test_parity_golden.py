"""Refactor parity: the config path reproduces the pre-refactor seed.

``tests/golden/figure8_fast8.json`` was captured from the repository
state *before* the ``HardwareConfig`` refactor (PR 4), by evaluating
``SystemEvaluator(SystemConfig(sample_images=8), quality="fast")`` —
figure8 rows plus headline claims, stored with full ``repr`` float
precision.  The refactor threads a frozen descriptor through every
layer, and at the default point (3nm node, typical corner) that must
be a pure plumbing change: every metric bit-identical, no tolerance.

If a deliberate modelling change ever breaks this, re-capture the
golden file in the same commit and say so in the commit message.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.hw.config import HardwareConfig
from repro.system.config import SystemConfig
from repro.system.evaluate import SystemEvaluator

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "figure8_fast8.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def evaluator(golden) -> SystemEvaluator:
    config = SystemConfig.from_hardware(
        HardwareConfig(seed=golden["config"]["seed"]),
        sample_images=golden["config"]["sample_images"],
    )
    return SystemEvaluator(config, quality=golden["config"]["quality"])


@pytest.fixture(scope="module")
def rows(evaluator):
    return evaluator.figure8()


class TestParity:
    def test_figure8_rows_bit_identical_to_seed(self, golden, rows):
        assert [r.cell_type.value for r in rows] == [
            r["cell_type"] for r in golden["rows"]
        ]
        for got, want in zip(rows, golden["rows"]):
            got_metrics = dataclasses.asdict(got.metrics)
            assert got_metrics == want["metrics"], (
                f"{want['cell_type']}: refactored metrics diverge from the "
                "pre-refactor golden capture"
            )

    def test_figure8_rows_via_bitpacked_engine_bit_identical_to_seed(
            self, golden, evaluator):
        """The popcount backend renders the same golden figure — every
        metric bit-for-bit, not just the predictions.

        The capture predates the engine-backend registry entirely, so
        this pins the whole bitpacked path (packing, memoized drain
        schedules, ledger replay) against a state that never knew it
        existed.
        """
        rows = evaluator.figure8(engine="bitpacked")
        assert [r.cell_type.value for r in rows] == [
            r["cell_type"] for r in golden["rows"]
        ]
        for got, want in zip(rows, golden["rows"]):
            assert dataclasses.asdict(got.metrics) == want["metrics"], (
                f"{want['cell_type']}: bitpacked metrics diverge from the "
                "pre-registry golden capture"
            )

    def test_headline_claims_bit_identical_to_seed(self, golden, evaluator,
                                                   rows):
        claims = dataclasses.asdict(evaluator.headline_claims(rows))
        want = dict(golden["claims"])
        # NaN-free comparison: accuracy is checked for exact equality
        # separately because NaN != NaN.
        assert claims.pop("accuracy") == want.pop("accuracy")
        assert claims == want
