"""Layer-to-array blocking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tile.mapping import LayerMapping


class TestBlockCounts:
    def test_paper_first_layer(self):
        """768 inputs = exactly 6 x 128 rows (section 4.4.2)."""
        m = LayerMapping(768, 256)
        assert m.row_blocks == 6
        assert m.col_blocks == 2
        assert m.array_count == 12
        assert m.arbiter_count == 6

    def test_hidden_layer(self):
        m = LayerMapping(256, 256)
        assert m.row_blocks == 2 and m.col_blocks == 2

    def test_output_layer_partial_block(self):
        m = LayerMapping(256, 10)
        assert m.col_blocks == 1
        assert m.cols_in_block(0) == 10

    def test_non_multiple_rounds_up(self):
        m = LayerMapping(130, 130)
        assert m.row_blocks == 2
        assert m.rows_in_block(0) == 128
        assert m.rows_in_block(1) == 2


class TestSlices:
    def test_row_slice_bounds(self):
        m = LayerMapping(300, 50)
        assert m.row_slice(0) == slice(0, 128)
        assert m.row_slice(2) == slice(256, 300)

    def test_out_of_range_checked(self):
        m = LayerMapping(128, 128)
        with pytest.raises(ConfigurationError):
            m.row_slice(1)
        with pytest.raises(ConfigurationError):
            m.col_slice(-1)


class TestBlockWeights:
    def test_exact_block(self, rng):
        w = rng.integers(0, 2, (256, 256))
        m = LayerMapping(256, 256)
        tile = m.block_weights(w, 1, 0)
        assert tile.shape == (128, 128)
        assert (tile == w[128:256, 0:128]).all()

    def test_partial_block_zero_padded(self, rng):
        w = rng.integers(0, 2, (256, 10))
        m = LayerMapping(256, 10)
        tile = m.block_weights(w, 0, 0)
        assert (tile[:, :10] == w[:128]).all()
        assert (tile[:, 10:] == 0).all()

    def test_blocks_tile_the_matrix(self, rng):
        """Reassembling every block recovers the original weights."""
        w = rng.integers(0, 2, (300, 140))
        m = LayerMapping(300, 140)
        recovered = np.zeros_like(w)
        for rb in range(m.row_blocks):
            for cb in range(m.col_blocks):
                tile = m.block_weights(w, rb, cb)
                rs, cs = m.row_slice(rb), m.col_slice(cb)
                recovered[rs, cs] = tile[: rs.stop - rs.start, : cs.stop - cs.start]
        assert (recovered == w).all()

    def test_shape_checked(self):
        m = LayerMapping(128, 128)
        with pytest.raises(ConfigurationError):
            m.block_weights(np.zeros((64, 64)), 0, 0)


class TestValidation:
    def test_rejects_bad_layer(self):
        with pytest.raises(ConfigurationError):
            LayerMapping(0, 10)
