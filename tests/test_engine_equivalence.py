"""Fast-engine equivalence: batched schedule vs cycle-accurate reference.

The fast engine must be *indistinguishable* from the per-cycle
simulator: same predictions, same per-tile cycle counts, same
grant/read counts and same energy-ledger contents, across cell types,
Vprech regimes (cycle stretch 1 and 2) and temporal mode.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.esam import EsamSystem
from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.tile.network import EsamNetwork, InferenceTrace

#: Layer stack crossing both row-block (160 > 128) and col-block
#: (130 > 128) boundaries, so partial blocks are exercised.
LAYER_SIZES = (160, 130, 10)

CELLS = [CellType.C6T, CellType.C1RW2R, CellType.C1RW4R]
VPRECHS = [0.5, 0.4]


def make_network(cell_type: CellType, vprech: float,
                 seed: int = 7) -> EsamNetwork:
    rng = np.random.default_rng(seed)
    weights = [
        rng.integers(0, 2, (a, b)).astype(np.uint8)
        for a, b in zip(LAYER_SIZES[:-1], LAYER_SIZES[1:])
    ]
    thresholds = [
        rng.integers(0, max(2, a // 8), b)
        for a, b in zip(LAYER_SIZES[:-1], LAYER_SIZES[1:])
    ]
    bias = rng.normal(0.0, 0.5, LAYER_SIZES[-1])
    return EsamNetwork(
        weights, thresholds, output_bias=bias,
        cell_type=cell_type, vprech=vprech,
    )


def sample_spikes(rng, images: int = 6) -> np.ndarray:
    return rng.random((images, LAYER_SIZES[0])) < 0.3


def assert_hardware_state_equal(fast: EsamNetwork, cycle: EsamNetwork) -> None:
    """Every stat counter and energy ledger must match exactly."""
    for tf, tc in zip(fast.tiles, cycle.tiles):
        assert dataclasses.asdict(tf.stats) == dataclasses.asdict(tc.stats)
        assert tf.arbiter_energy_pj == pytest.approx(
            tc.arbiter_energy_pj, rel=1e-12
        )
        for af, ac in zip(tf.arbiters, tc.arbiters):
            assert af.cycles_elapsed == ac.cycles_elapsed
            assert af.grants_issued == ac.grants_issued
        for row_f, row_c in zip(tf.macros, tc.macros):
            for mf, mc in zip(row_f, row_c):
                assert mf.ledger.inference_reads == mc.ledger.inference_reads
                assert mf.ledger.inference_read_energy_pj == pytest.approx(
                    mc.ledger.inference_read_energy_pj, rel=1e-12
                )
        for nf, nc in zip(tf.neurons, tc.neurons):
            assert nf.accumulate_events == nc.accumulate_events
            assert nf.fire_checks == nc.fire_checks
            assert np.array_equal(nf.vmem, nc.vmem)
    assert fast.dynamic_energy_pj() == pytest.approx(
        cycle.dynamic_energy_pj(), rel=1e-12
    )


class TestBatchedInferenceEquivalence:
    @pytest.mark.parametrize("cell_type", CELLS, ids=[c.value for c in CELLS])
    @pytest.mark.parametrize("vprech", VPRECHS)
    def test_trace_and_energy_identical(self, cell_type, vprech, rng):
        spikes = sample_spikes(rng)
        fast_net = make_network(cell_type, vprech)
        cycle_net = make_network(cell_type, vprech)

        fast_trace = InferenceTrace()
        fast_scores = fast_net.infer_batch(spikes, fast_trace, engine="fast")
        cycle_trace = InferenceTrace()
        cycle_scores = np.stack(
            [cycle_net.infer(row, cycle_trace) for row in spikes]
        )

        assert np.array_equal(fast_scores, cycle_scores)
        assert fast_trace.images == cycle_trace.images
        assert fast_trace.per_tile_cycles == cycle_trace.per_tile_cycles
        assert fast_trace.total_spikes == cycle_trace.total_spikes
        assert fast_trace.total_grants == cycle_trace.total_grants
        assert fast_trace.total_array_reads == cycle_trace.total_array_reads
        assert_hardware_state_equal(fast_net, cycle_net)

    def test_vprech_regimes_cover_both_cycle_stretches(self):
        """0.5 V vs 0.4 V on the 4-port cell spans stretch 1 and 2."""
        stretches = {
            make_network(CellType.C1RW4R, vprech).cycle_stretch
            for vprech in VPRECHS
        }
        assert stretches == {1, 2}

    def test_classify_batch_matches_sequential_classify(self, rng):
        spikes = sample_spikes(rng, images=10)
        net = make_network(CellType.C1RW4R, 0.5)
        fast_preds = net.classify_batch(spikes, engine="fast")
        cycle_preds = np.array([net.classify(row) for row in spikes])
        assert np.array_equal(fast_preds, cycle_preds)

    def test_cycle_engine_reachable_through_batched_api(self, rng):
        spikes = sample_spikes(rng, images=3)
        net_a = make_network(CellType.C1RW2R, 0.5)
        net_b = make_network(CellType.C1RW2R, 0.5)
        via_batch = net_a.infer_batch(spikes, engine="cycle")
        direct = np.stack([net_b.infer(row) for row in spikes])
        assert np.array_equal(via_batch, direct)
        assert_hardware_state_equal(net_a, net_b)

    def test_unknown_engine_rejected(self, rng):
        net = make_network(CellType.C1RW4R, 0.5)
        with pytest.raises(ConfigurationError):
            net.infer_batch(sample_spikes(rng), engine="warp")

    def test_fast_engine_cached_and_refreshable(self):
        net = make_network(CellType.C1RW4R, 0.5)
        first = net.fast_engine()
        assert net.fast_engine() is first
        tile = net.tiles[0]
        flipped = 1 - tile.weight_matrix()
        for rb in range(tile.mapping.row_blocks):
            for cb in range(tile.mapping.col_blocks):
                tile.macros[rb][cb].load_weights(
                    tile.mapping.block_weights(flipped, rb, cb)
                )
        refreshed = net.fast_engine(refresh=True)
        assert refreshed is not first
        assert np.array_equal(
            refreshed._kernels[0].signed, 2.0 * flipped.astype(np.float64) - 1.0
        )


class TestTemporalEquivalence:
    @pytest.mark.parametrize("cell_type", [CellType.C1RW4R, CellType.C6T],
                             ids=["1RW+4R", "1RW"])
    def test_persistent_membranes_identical(self, cell_type, rng):
        trains = rng.random((6, LAYER_SIZES[0])) < 0.25
        fast_net = make_network(cell_type, 0.5)
        cycle_net = make_network(cell_type, 0.5)

        fast_result = fast_net.run_temporal(trains, engine="fast")
        cycle_result = cycle_net.run_temporal(trains, engine="cycle")

        assert np.array_equal(fast_result.spike_counts, cycle_result.spike_counts)
        assert np.array_equal(fast_result.final_vmem, cycle_result.final_vmem)
        assert np.array_equal(
            fast_result.hidden_spike_totals, cycle_result.hidden_spike_totals
        )
        # Membranes persist identically in the hardware state, so the
        # engines are interchangeable mid-run.
        for tf, tc in zip(fast_net.tiles, cycle_net.tiles):
            assert np.array_equal(
                tf.membrane_potentials(), tc.membrane_potentials()
            )
        assert_hardware_state_equal(fast_net, cycle_net)

    @pytest.mark.parametrize("order", ["fast-then-cycle", "cycle-then-fast"])
    def test_engines_interchangeable_mid_temporal_run(self, order, rng):
        """Either engine resumes from the other's persisted membranes."""
        first, second = order.split("-then-")
        trains = rng.random((4, LAYER_SIZES[0])) < 0.25
        mixed = make_network(CellType.C1RW4R, 0.5)
        pure = make_network(CellType.C1RW4R, 0.5)
        mixed.run_temporal(trains[:2], engine=first)
        mixed_result = mixed.run_temporal(trains[2:], engine=second)
        pure.run_temporal(trains[:2], engine="cycle")
        pure_result = pure.run_temporal(trains[2:], engine="cycle")
        assert np.array_equal(
            mixed_result.spike_counts, pure_result.spike_counts
        )
        assert np.array_equal(
            mixed_result.final_vmem, pure_result.final_vmem
        )
        assert_hardware_state_equal(mixed, pure)


class TestSaturationExactness:
    def test_fan_in_beyond_vmem_rail_stays_exact(self, rng):
        """A layer wide enough to rail mid-drain falls back to the
        grant-ordered exact path and still matches the reference."""
        weights = [rng.integers(0, 2, (2100, 8)).astype(np.uint8)]
        thresholds = [rng.integers(0, 16, 8)]
        spikes = rng.random((3, 2100)) < 0.9  # dense: partial sums rail out
        fast_net = EsamNetwork(weights, thresholds)
        cycle_net = EsamNetwork(weights, thresholds)
        fast_scores = fast_net.infer_batch(spikes, engine="fast")
        cycle_scores = np.stack([cycle_net.infer(row) for row in spikes])
        assert np.array_equal(fast_scores, cycle_scores)
        assert_hardware_state_equal(fast_net, cycle_net)

    def test_temporal_membranes_pinned_at_rail_stay_exact(self, rng):
        """Persistent membranes near +2047 (unreachable thresholds)
        saturate mid-drain; the engines must still agree.

        The last rows carry -1 weights, so at the rail the per-cycle
        reference clips *before* subtracting them — the case a single
        end-of-drain clip gets wrong without the grant-order fallback.
        """
        weights = [np.ones((64, 6), dtype=np.uint8)]
        weights[0][56:, :] = 0                 # trailing -1 contributions
        thresholds = [np.full(6, 10_000)]      # beyond the rail: never fire
        trains = rng.random((60, 64)) < 0.9
        fast_net = EsamNetwork(weights, thresholds)
        cycle_net = EsamNetwork(weights, thresholds)
        fast_result = fast_net.run_temporal(trains, engine="fast")
        cycle_result = cycle_net.run_temporal(trains, engine="cycle")
        assert np.max(cycle_result.final_vmem) > 1983  # saturation reached
        assert np.array_equal(fast_result.final_vmem, cycle_result.final_vmem)
        assert_hardware_state_equal(fast_net, cycle_net)

    def test_static_inference_after_temporal_residue_stays_exact(self, rng):
        """Static batches accumulate on top of residual temporal charge
        (first image only) and leave all membranes cleared — in both
        engines."""
        trains = rng.random((3, LAYER_SIZES[0])) < 0.25
        spikes = sample_spikes(rng, images=4)
        fast_net = make_network(CellType.C1RW4R, 0.5)
        cycle_net = make_network(CellType.C1RW4R, 0.5)
        fast_net.run_temporal(trains, engine="cycle")   # leaves residue
        cycle_net.run_temporal(trains, engine="cycle")
        fast_scores = fast_net.infer_batch(spikes, engine="fast")
        cycle_scores = np.stack([cycle_net.infer(row) for row in spikes])
        assert np.array_equal(fast_scores, cycle_scores)
        assert_hardware_state_equal(fast_net, cycle_net)


class TestSystemFacadeEquivalence:
    def test_classify_spikes_engines_produce_identical_reports(self, rng):
        system = EsamSystem.from_random((96, 48, 10), seed=3)
        spikes = rng.random((8, 96)) < 0.3
        fast = system.classify_spikes(spikes, engine="fast")
        cycle = system.classify_spikes(spikes, engine="cycle")
        assert np.array_equal(fast.predictions, cycle.predictions)
        fast_metrics = dataclasses.asdict(fast.report.metrics)
        cycle_metrics = dataclasses.asdict(cycle.report.metrics)
        assert fast_metrics == pytest.approx(cycle_metrics, rel=1e-12)

    def test_unknown_engine_rejected(self, rng):
        system = EsamSystem.from_random((96, 48, 10), seed=3)
        with pytest.raises(ConfigurationError):
            system.classify_spikes(rng.random((2, 96)) < 0.3, engine="nope")

    def test_fault_injection_invalidates_cached_fast_engine(self, rng):
        """In-place bit flips must reach the default fast path."""
        from repro.sram.faults import FaultInjector

        net = make_network(CellType.C1RW4R, 0.5)
        spikes = sample_spikes(rng, images=4)
        net.classify_batch(spikes)  # caches the fast engine
        injector = FaultInjector(
            [t.weight_matrix() for t in net.tiles],
            [np.concatenate([n.thresholds for n in t.neurons]) for t in net.tiles],
        )
        flips = injector.inject_network(net, 0.05)
        assert flips > 0
        fast = net.infer_batch(spikes, engine="fast")
        cycle = np.stack([net.infer(row) for row in spikes])
        assert np.array_equal(fast, cycle)

    def test_online_learning_invalidates_cached_fast_engine(self, rng):
        """STDP weight writes must not leave a stale weight snapshot
        behind the default fast path."""
        system = EsamSystem.from_random((96, 48, 10), seed=5)
        spikes = rng.random((6, 96)) < 0.3
        system.classify_spikes(spikes)  # caches the fast engine
        learner = system.online_learning_engine(layer=0)
        learner.learn(rng.random(96) < 0.5, np.arange(48))
        engine = system.network.fast_engine()
        current = system.network.tiles[0].weight_matrix()
        assert np.array_equal(
            engine._kernels[0].signed, 2.0 * current.astype(np.float64) - 1.0
        )
        fast = system.classify_spikes(spikes, engine="fast")
        cycle = system.classify_spikes(spikes, engine="cycle")
        assert np.array_equal(fast.predictions, cycle.predictions)
