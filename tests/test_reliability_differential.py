"""Differential testing: every engine pair agrees on faulted networks.

Three pins, each over a grid of (cell x BER x corner):

1. the *functional* fault path (``flip_bits`` on the layer matrices)
   and the *hardware* fault path (``FaultInjector`` loading macros
   through their normal write path) produce identical predictions;
2. the fast and cycle engines stay trace-identical on faulted
   networks — extending ``test_engine_equivalence.py`` to the fault
   scenario, so the reliability campaigns may run entirely on the
   fast engine;
3. the legacy cumulative ``inject_network`` draws the same masks as
   ``flip_bits`` when seeded identically (the two paths share one
   random stream by construction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.config import HardwareConfig
from repro.snn.model import BinarySNN
from repro.sram.bitcell import CellType
from repro.sram.faults import FaultInjector, flip_bits, trial_seed_sequence
from repro.tile.network import EsamNetwork
from tests.test_engine_equivalence import assert_hardware_state_equal

#: Cross block boundaries (160 > 128 rows, 130 > 128 cols) so faults
#: land in partial blocks too.
LAYER_SIZES = (160, 130, 10)

CELLS = [CellType.C6T, CellType.C1RW2R, CellType.C1RW4R]
BERS = [1e-3, 5e-2]
CORNERS = ["typical", "slow"]


def clean_parameters(seed: int = 7):
    rng = np.random.default_rng(seed)
    weights = [
        rng.integers(0, 2, (a, b)).astype(np.uint8)
        for a, b in zip(LAYER_SIZES[:-1], LAYER_SIZES[1:])
    ]
    thresholds = [
        rng.integers(0, max(2, a // 8), b)
        for a, b in zip(LAYER_SIZES[:-1], LAYER_SIZES[1:])
    ]
    bias = rng.normal(0.0, 0.5, LAYER_SIZES[-1])
    return weights, thresholds, bias


def make_network(config: HardwareConfig) -> EsamNetwork:
    weights, thresholds, bias = clean_parameters()
    return EsamNetwork(weights, thresholds, output_bias=bias, config=config)


def sample_spikes(images: int = 8) -> np.ndarray:
    rng = np.random.default_rng(12345)
    return rng.random((images, LAYER_SIZES[0])) < 0.3


@pytest.mark.parametrize("corner", CORNERS)
@pytest.mark.parametrize("ber", BERS)
@pytest.mark.parametrize("cell", CELLS, ids=[c.value for c in CELLS])
class TestFaultPathEquivalence:
    def test_functional_and_hardware_paths_agree(self, cell, ber, corner):
        """Same config seed, same trial => same faults, same predictions
        whether injected into arrays or into the hardware macros."""
        config = HardwareConfig(cell_type=cell, corner=corner, seed=99)
        weights, thresholds, bias = clean_parameters()
        injector = FaultInjector(weights, thresholds, bias, config=config)
        spikes = sample_spikes()

        # Functional path: flip_bits on the layer matrices via the
        # trial stream, evaluated by the batched reference model.
        faulty, flips = injector.faulty_weights_for_trial(ber, trial=0)
        functional = BinarySNN(faulty, thresholds, bias)
        functional_preds = functional.classify(spikes)

        # Hardware path: the same trial loaded into the macros.
        network = make_network(config)
        hw_flips = injector.apply_trial(network, ber, trial=0)
        hardware_preds = network.classify_batch(spikes, engine="fast")

        assert hw_flips == flips > 0
        assert np.array_equal(network.tiles[0].weight_matrix(), faulty[0])
        assert np.array_equal(hardware_preds, functional_preds)

    def test_fast_and_cycle_engines_identical_on_faulted_network(
            self, cell, ber, corner):
        """The engine-equivalence guarantee survives fault injection:
        predictions, traces, ledgers and counters all match."""
        config = HardwareConfig(cell_type=cell, corner=corner, seed=99)
        fast_net = make_network(config)
        cycle_net = make_network(config)
        FaultInjector(*clean_parameters(), config=config).apply_trial(
            fast_net, ber, trial=0
        )
        FaultInjector(*clean_parameters(), config=config).apply_trial(
            cycle_net, ber, trial=0
        )
        spikes = sample_spikes()
        fast_scores = fast_net.infer_batch(spikes, engine="fast")
        cycle_scores = np.stack(
            [cycle_net.infer(row) for row in spikes]
        )
        assert np.array_equal(fast_scores, cycle_scores)
        assert_hardware_state_equal(fast_net, cycle_net)


class TestLegacyInjectorEquivalence:
    def test_inject_network_matches_flip_bits_draw_for_draw(self):
        """The cumulative in-place path consumes the random stream
        exactly like the functional path (logical matrices, layer
        order), so identically-seeded generators flip the same bits."""
        config = HardwareConfig(seed=5)
        weights, thresholds, bias = clean_parameters()
        injector = FaultInjector(weights, thresholds, bias, config=config)
        network = make_network(config)

        rng = np.random.default_rng(31)
        flips_hw = injector.inject_network(network, 0.02, rng=rng)

        rng_ref = np.random.default_rng(31)
        flips_fn = 0
        for k, w in enumerate(weights):
            faulty, flips = flip_bits(w, 0.02, rng_ref)
            flips_fn += flips
            assert np.array_equal(network.tiles[k].weight_matrix(), faulty)
        assert flips_hw == flips_fn

    def test_injector_seed_follows_config(self):
        """Regression (latent seed bug): the injector's stream derives
        from the HardwareConfig seed, so configs differing only by seed
        draw different masks, and equal seeds draw equal masks."""
        weights, thresholds, bias = clean_parameters()
        a = FaultInjector(weights, thresholds, bias,
                          config=HardwareConfig(seed=1))
        b = FaultInjector(weights, thresholds, bias,
                          config=HardwareConfig(seed=1))
        c = FaultInjector(weights, thresholds, bias,
                          config=HardwareConfig(seed=2))
        assert a.seed == b.seed == 1 and c.seed == 2
        fa, _ = a.faulty_weights_for_trial(0.05, trial=0)
        fb, _ = b.faulty_weights_for_trial(0.05, trial=0)
        fc, _ = c.faulty_weights_for_trial(0.05, trial=0)
        assert all(np.array_equal(x, y) for x, y in zip(fa, fb))
        assert any(not np.array_equal(x, y) for x, y in zip(fa, fc))

    def test_trial_streams_are_ber_and_trial_specific(self):
        """Distinct (BER, trial) cells never share a stream; the same
        cell always reproduces it."""
        ss = trial_seed_sequence(42, 1e-3, 0)
        assert (np.random.default_rng(ss).random(4)
                == np.random.default_rng(
                    trial_seed_sequence(42, 1e-3, 0)).random(4)).all()
        streams = {
            tuple(np.random.default_rng(
                trial_seed_sequence(seed, ber, trial)).random(4))
            for seed in (42, 7)
            for ber in (1e-3, 1e-2)
            for trial in (0, 1)
        }
        assert len(streams) == 8
