"""Unit-convention helpers."""

import math

import pytest

from repro import units


class TestRcDelay:
    def test_kohm_ff_gives_ns(self):
        # 1 kOhm * 1000 fF = 1 ns.
        assert units.rc_delay_ns(1.0, 1000.0) == pytest.approx(1.0)

    def test_zero_is_zero(self):
        assert units.rc_delay_ns(0.0, 123.0) == 0.0


class TestCv2Energy:
    def test_ff_v2_gives_pj(self):
        # 1000 fF at 1 V = 1 pJ.
        assert units.cv2_energy_pj(1000.0, 1.0) == pytest.approx(1.0)

    def test_scales_quadratically_with_voltage(self):
        e1 = units.cv2_energy_pj(100.0, 0.5)
        e2 = units.cv2_energy_pj(100.0, 1.0)
        assert e2 == pytest.approx(4.0 * e1)


class TestChargeEnergy:
    def test_partial_swing(self):
        # C * Vsupply * dV: 100 fF from a 0.7 V rail, 0.5 V swing.
        assert units.charge_energy_pj(100.0, 0.7, 0.5) == pytest.approx(0.035)

    def test_full_swing_matches_cv2(self):
        assert units.charge_energy_pj(50.0, 0.7, 0.7) == pytest.approx(
            units.cv2_energy_pj(50.0, 0.7)
        )


class TestPower:
    def test_pj_per_ns_is_mw(self):
        assert units.power_mw(607.0, 21.0) == pytest.approx(28.9, rel=1e-3)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            units.power_mw(1.0, 0.0)


class TestFrequency:
    def test_1ns_is_1ghz(self):
        assert units.frequency_mhz(1.0) == pytest.approx(1000.0)

    def test_paper_clock(self):
        # 1.2346 ns -> ~810 MHz (the paper's Table 3 clock).
        assert units.frequency_mhz(1.2346) == pytest.approx(810.0, rel=1e-3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.frequency_mhz(-1.0)


class TestThroughput:
    def test_one_item_per_ns_is_1e9(self):
        assert units.throughput_per_s(1.0, 1.0) == pytest.approx(1e9)

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            units.throughput_per_s(1.0, 0.0)


class TestSiFormat:
    def test_mega(self):
        assert units.si_format(44e6, "Inf/s") == "44 MInf/s"

    def test_pico(self):
        assert units.si_format(607e-12, "J") == "607 pJ"

    def test_zero(self):
        assert units.si_format(0.0, "W") == "0 W"

    def test_milli(self):
        assert units.si_format(29e-3, "W") == "29 mW"


class TestFormatRatio:
    def test_basic(self):
        assert units.format_ratio(3.06) == "3.1x"
        assert units.format_ratio(2.2456, digits=2) == "2.25x"
