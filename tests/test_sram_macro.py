"""SRAM macro: access bookkeeping and cost ledger."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.sram.macro import MacroEnergyLedger, SramMacro


@pytest.fixture()
def macro(rng) -> SramMacro:
    m = SramMacro(CellType.C1RW4R, vprech=0.5)
    m.load_weights(rng.integers(0, 2, (128, 128)))
    return m


class TestInferencePath:
    def test_serve_spikes_returns_rows(self, macro):
        ref = macro.array.dump_weights()
        out = macro.serve_spikes([1, 2, 3])
        assert (out == ref[[1, 2, 3]]).all()

    def test_ledger_counts_reads(self, macro):
        macro.serve_spikes([0, 1])
        macro.serve_spikes([7])
        assert macro.ledger.inference_reads == 3

    def test_ledger_energy_matches_model(self, macro):
        macro.serve_spikes([0, 1, 2, 3])
        per_read = macro.read_ports.operating_point(
            CellType.C1RW4R, 0.5
        ).read_energy_pj
        assert macro.ledger.inference_read_energy_pj == pytest.approx(4 * per_read)


class TestLearningPath:
    def test_column_rmw_costs_4_accesses_each_way(self, macro, rng):
        bits = rng.integers(0, 2, 128)
        macro.read_column(3)
        macro.write_column(3, bits)
        assert macro.ledger.transposed_reads == 4
        assert macro.ledger.transposed_writes == 4
        assert (macro.array.dump_weights()[:, 3] == bits).all()

    def test_column_rmw_time_matches_paper(self, macro):
        """4R: read 9.9 ns + write 8.04 ns per column."""
        macro.read_column(0)
        macro.write_column(0, np.zeros(128, dtype=np.uint8))
        assert macro.ledger.transposed_time_ns == pytest.approx(9.9 + 8.04, rel=1e-3)

    def test_6t_column_update_costs_full_sweep(self, rng):
        m = SramMacro(CellType.C6T)
        m.load_weights(rng.integers(0, 2, (128, 128)))
        m.update_column_6t(5, rng.integers(0, 2, 128))
        assert m.ledger.transposed_reads == 128
        assert m.ledger.transposed_writes == 128
        assert m.ledger.transposed_time_ns == pytest.approx(257.8, rel=1e-3)

    def test_6t_update_rejected_on_multiport(self, macro):
        with pytest.raises(ConfigurationError):
            macro.update_column_6t(0, np.zeros(128))


class TestLedger:
    def test_merge(self):
        a = MacroEnergyLedger(inference_reads=2, inference_read_energy_pj=1.0)
        b = MacroEnergyLedger(inference_reads=3, transposed_writes=4)
        merged = a.merge(b)
        assert merged.inference_reads == 5
        assert merged.transposed_writes == 4
        assert merged.inference_read_energy_pj == pytest.approx(1.0)

    def test_reset(self, macro):
        macro.serve_spikes([0])
        macro.reset_ledger()
        assert macro.ledger.inference_reads == 0
        assert macro.ledger.dynamic_energy_pj == 0.0


class TestStatics:
    def test_leakage_energy(self, macro):
        assert macro.leakage_energy_pj(100.0) == pytest.approx(
            100.0 * macro.leakage_power_mw
        )

    def test_leakage_rejects_negative_time(self, macro):
        with pytest.raises(ConfigurationError):
            macro.leakage_energy_pj(-1.0)

    def test_area_positive_and_grows_with_ports(self):
        a6 = SramMacro(CellType.C6T).area_um2
        a4 = SramMacro(CellType.C1RW4R).area_um2
        assert 0.0 < a6 < a4
