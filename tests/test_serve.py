"""Serving subsystem: batcher policy, backpressure, registry, metrics.

Also hosts the split-invariance property test — the correctness
foundation micro-batching rests on: however a request stream is
partitioned into batches, ``infer_batch`` must produce bit-identical
results, so the server's timing-dependent batching cannot change any
prediction.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QueueFullError, ServingError
from repro.serve import (
    BatchPolicy,
    InferenceServer,
    MicroBatcher,
    ModelRegistry,
    ServingMetrics,
    latency_percentiles,
)
from repro.serve.__main__ import main as serve_main
from repro.sram.bitcell import CellType
from repro.sweep.spec import DesignPoint
from repro.learning.convert import ConvertedSNN
from repro.tile.network import EsamNetwork, validate_spikes


def random_network(layers=(64, 32, 10), seed=0,
                   cell_type=CellType.C1RW4R) -> EsamNetwork:
    """A small random binary network (no training required)."""
    rng = np.random.default_rng(seed)
    weights = [
        rng.integers(0, 2, (a, b)).astype(np.uint8)
        for a, b in zip(layers[:-1], layers[1:])
    ]
    thresholds = [
        np.full(b, max(1, a // 16), dtype=np.int64)
        for a, b in zip(layers[:-1], layers[1:])
    ]
    return EsamNetwork(weights, thresholds, cell_type=cell_type)


def random_spikes(n, width=64, seed=3, density=0.2) -> np.ndarray:
    return np.random.default_rng(seed).random((n, width)) < density


class FakeClock:
    """Deterministic injectable clock for batcher/metrics tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


# -- batch policy / micro-batcher ----------------------------------------------------


class TestBatchPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_wait_ms=-1.0)
        with pytest.raises(ConfigurationError):
            BatchPolicy(max_batch_size=4, min_batch_size=5)
        with pytest.raises(ConfigurationError):
            BatchPolicy(min_batch_size=0)


class TestMicroBatcher:
    def _batcher(self, **kwargs):
        clock = FakeClock()
        policy = BatchPolicy(**{"max_wait_ms": 1000.0, **kwargs})
        return MicroBatcher(policy, clock=clock), clock

    def test_size_triggered_flush(self):
        batcher, _ = self._batcher(max_batch_size=4)
        for item in "abc":
            batcher.add(item)
        assert not batcher.ready()
        batcher.add("d")
        assert batcher.ready()
        assert batcher.take() == ["a", "b", "c", "d"]
        assert len(batcher) == 0 and not batcher.ready()

    def test_deadline_triggered_flush(self):
        batcher, clock = self._batcher(max_batch_size=64, max_wait_ms=5.0)
        batcher.add("a")
        batcher.add("b")
        assert not batcher.ready()
        assert batcher.next_deadline() == pytest.approx(0.005)
        clock.advance(0.006)
        assert batcher.ready()
        assert batcher.take() == ["a", "b"]

    def test_take_caps_at_batch_size(self):
        batcher, _ = self._batcher(max_batch_size=4)
        for i in range(10):
            batcher.add(i)
        assert batcher.take() == [0, 1, 2, 3]
        assert len(batcher) == 6

    def test_adaptive_target_grows_under_backlog(self):
        batcher, _ = self._batcher(max_batch_size=16, adaptive=True)
        assert batcher.target == 1
        for i in range(31):
            batcher.add(i)
        sizes = []
        while len(batcher):
            sizes.append(len(batcher.take()))
        # Every size-triggered flush that leaves a full backlog doubles
        # the target: 1, 2, 4, 8, 16, then capped.
        assert sizes == [1, 2, 4, 8, 16]
        assert batcher.target == 16

    def test_adaptive_target_shrinks_when_idle(self):
        batcher, clock = self._batcher(
            max_batch_size=16, adaptive=True, max_wait_ms=5.0
        )
        for i in range(31):
            batcher.add(i)
        while len(batcher):
            batcher.take()
        assert batcher.target == 16
        # Lone deadline-expired requests halve the target back down.
        for expected in (8, 4, 2, 1, 1):
            batcher.add("x")
            clock.advance(0.006)
            assert batcher.take() == ["x"]
            assert batcher.target == expected

    def test_drain_empties_in_max_size_batches(self):
        batcher, _ = self._batcher(max_batch_size=4)
        for i in range(10):
            batcher.add(i)
        batches = batcher.drain()
        assert [len(b) for b in batches] == [4, 4, 2]
        assert sum(batches, []) == list(range(10))


# -- metrics -------------------------------------------------------------------------


class TestServingMetrics:
    def test_percentiles_of_known_trace(self):
        trace = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0]
        result = latency_percentiles(trace)
        assert result["p50_ms"] == pytest.approx(55.0)
        assert result["p95_ms"] == pytest.approx(95.5)
        assert result["p99_ms"] == pytest.approx(99.1)

    def test_percentiles_require_samples(self):
        with pytest.raises(ConfigurationError):
            latency_percentiles([])

    def test_collector_roll_up(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        metrics.mark_started()
        metrics.record_submitted(queue_depth=1)
        metrics.record_submitted(queue_depth=2)
        metrics.record_rejected()
        metrics.record_batch(2)
        for latency_ms in (10.0, 30.0):
            metrics.record_completed(latency_ms / 1e3)
        clock.advance(0.5)
        metrics.mark_stopped()
        data = metrics.to_dict()
        assert data["submitted"] == 2
        assert data["completed"] == 2
        assert data["rejected"] == 1
        assert data["failed"] == 0
        assert data["achieved_inf_s"] == pytest.approx(4.0)
        assert data["batch_size_hist"] == {"2": 1}
        assert data["queue_depth_hist"] == {"1": 1, "2": 1}
        assert data["latency"]["p50_ms"] == pytest.approx(20.0)
        assert data["mean_batch_size"] == pytest.approx(2.0)
        assert "throughput" in metrics.summary()

    def test_empty_window_snapshot_is_complete_and_valid(self):
        # The empty-window contract: a collector that has seen no
        # requests still exports a full snapshot — every counter 0,
        # latency/mean_batch_size explicitly None (never NaN, never a
        # missing key), and no method raises.
        metrics = ServingMetrics(clock=FakeClock())
        data = metrics.to_dict()
        for counter in ("submitted", "completed", "failed", "rejected",
                        "shed", "retried", "broken_circuit"):
            assert data[counter] == 0
        assert data["latency"] is None
        assert data["mean_batch_size"] is None
        assert data["batch_size_hist"] == {}
        assert data["queue_depth_hist"] == {}
        assert data["elapsed_s"] == 0.0
        assert data["achieved_inf_s"] == 0.0
        assert metrics.percentiles() == {
            "p50_ms": None, "p95_ms": None, "p99_ms": None,
        }
        assert "0 submitted" in metrics.summary()
        import json

        assert json.loads(metrics.to_json())["latency"] is None

    def test_empty_window_after_start_does_not_crash(self):
        clock = FakeClock()
        metrics = ServingMetrics(clock=clock)
        metrics.mark_started()
        clock.advance(1.0)
        data = metrics.to_dict()
        assert data["elapsed_s"] == pytest.approx(1.0)
        assert data["achieved_inf_s"] == 0.0
        assert data["latency"] is None

    def test_collector_is_a_registry_view(self):
        # Every counter the attribute API exposes is backed by a
        # registry series, so --metrics-out exports agree with
        # to_dict() by construction.
        from repro.obs import parse_prometheus_text

        metrics = ServingMetrics(clock=FakeClock())
        metrics.record_submitted(queue_depth=1)
        metrics.record_completed(0.010)
        metrics.record_shed(2)
        text = metrics.registry.to_text()
        samples = parse_prometheus_text(text)
        assert samples[("repro_serving_submitted_total", ())] == 1
        assert samples[("repro_serving_completed_total", ())] == 1
        assert samples[("repro_serving_shed_total", ())] == 2
        assert metrics.submitted == 1 and metrics.shed == 2

    def test_collectors_default_to_private_registries(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.record_submitted(queue_depth=1)
        assert a.submitted == 1
        assert b.submitted == 0
        assert a.registry is not b.registry


# -- registry ------------------------------------------------------------------------


class TestModelRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        network = random_network()
        assert registry.register_network("demo", network) is network
        assert registry.get("demo") is network
        assert "demo" in registry and len(registry) == 1
        assert registry.names() == ["demo"]

    def test_unknown_model_raises_serving_error(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        with pytest.raises(ServingError, match="demo"):
            registry.get("nope")

    def test_duplicate_registration_rejected(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register_network("demo", random_network(seed=1))

    def test_register_from_design_point(self):
        rng = np.random.default_rng(5)
        snn = ConvertedSNN(
            weights=[rng.integers(0, 2, (64, 10)).astype(np.uint8)],
            thresholds=[np.full(10, 3, dtype=np.int64)],
            output_bias=np.zeros(10),
        )
        registry = ModelRegistry()
        point = DesignPoint(cell_type=CellType.C1RW2R, vprech=0.6)
        network = registry.register("p", point, snn=snn)
        assert network.cell_type is CellType.C1RW2R
        assert network.vprech == 0.6
        assert registry.entry("p").describe()["point"] == point.label

    def test_swap_validates_interface(self):
        registry = ModelRegistry()
        registry.register_network("demo", random_network(layers=(64, 10)))
        with pytest.raises(ConfigurationError, match="interface"):
            registry.swap("demo", random_network(layers=(32, 10)))

    def test_swap_replaces_network(self):
        registry = ModelRegistry()
        first = random_network(seed=0)
        second = random_network(seed=1)
        registry.register_network("demo", first)
        assert registry.swap("demo", second) is first
        assert registry.get("demo") is second

    def test_hot_swap_after_in_place_weight_update(self):
        """Online-learning weight updates reach served predictions.

        Mutating macros in place + ``note_weight_update`` must make the
        next served batch run on the new weights (the cached fast
        engine rebuilds via ``Tile.weight_version``) — no registry or
        server restart involved.
        """
        registry = ModelRegistry()
        network = random_network()
        registry.register_network("demo", network)
        spikes = random_spikes(24)
        server = InferenceServer(
            registry, policy=BatchPolicy(max_batch_size=8, max_wait_ms=1.0)
        ).start()
        try:
            before = [server.classify("demo", row) for row in spikes]
            versions_before = registry.entry("demo").weight_versions

            tile = network.tiles[0]
            flipped = (1 - tile.weight_matrix()).astype(np.uint8)
            for rb in range(tile.mapping.row_blocks):
                for cb in range(tile.mapping.col_blocks):
                    tile.macros[rb][cb].load_weights(
                        tile.mapping.block_weights(flipped, rb, cb)
                    )
            tile.note_weight_update()

            after = [server.classify("demo", row) for row in spikes]
        finally:
            server.stop()
        assert registry.entry("demo").weight_versions != versions_before
        offline = network.classify_batch(spikes)
        assert np.array_equal(after, offline)
        assert before != after


# -- spike input validation (EsamNetwork boundary) -----------------------------------


class TestSpikeValidation:
    def test_rejects_non_binary_values(self):
        network = random_network()
        bad = np.full(64, 0.5)
        with pytest.raises(ConfigurationError, match="0/1"):
            network.infer(bad)
        with pytest.raises(ConfigurationError, match="0/1"):
            network.infer_batch(np.stack([bad, bad]))
        with pytest.raises(ConfigurationError, match="0/1"):
            network.infer_batch(np.stack([bad, bad]), engine="cycle")

    def test_rejects_nan_and_strings(self):
        network = random_network()
        nan = np.zeros(64)
        nan[0] = np.nan
        with pytest.raises(ConfigurationError):
            network.infer(nan)
        with pytest.raises(ConfigurationError):
            network.infer_batch(np.array([["a"] * 64]))

    def test_rejects_wrong_trailing_dimension(self):
        network = random_network()
        with pytest.raises(ConfigurationError, match=r"\(64,\)"):
            network.infer(np.zeros(32, dtype=bool))
        with pytest.raises(ConfigurationError, match=r"\(B, 64\)"):
            network.infer_batch(np.zeros((4, 32), dtype=bool))
        with pytest.raises(ConfigurationError):
            network.infer_batch(np.zeros((2, 4, 64), dtype=bool))

    def test_accepts_bool_and_01_numeric(self):
        network = random_network()
        as_bool = random_spikes(3)
        for cast in (np.bool_, np.uint8, np.int64, np.float64):
            out = network.infer_batch(as_bool.astype(cast))
            assert out.shape == (3, 10)

    def test_single_vector_promoted_to_batch(self):
        spikes = random_spikes(1)[0]
        assert validate_spikes(spikes, 64, batch=True).shape == (1, 64)
        assert validate_spikes(spikes, 64).shape == (64,)


# -- split invariance (the foundation micro-batching rests on) -----------------------


@functools.lru_cache(maxsize=None)
def _invariance_network(cell_value: str) -> EsamNetwork:
    return random_network(
        layers=(32, 16, 10), seed=7, cell_type=CellType(cell_value)
    )


@functools.lru_cache(maxsize=None)
def _invariance_full(cell_value: str, engine: str) -> np.ndarray:
    spikes = random_spikes(8, width=32, seed=11)
    return _invariance_network(cell_value).infer_batch(spikes, engine=engine)


class TestSplitInvariance:
    @given(
        cuts=st.sets(st.integers(1, 7)),
        engine=st.sampled_from(["fast", "cycle"]),
        cell=st.sampled_from(["1RW", "1RW+2R", "1RW+4R"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_partition_concatenates_bit_identically(
        self, cuts, engine, cell
    ):
        """Concatenated sub-batch results equal the one-shot batch."""
        spikes = random_spikes(8, width=32, seed=11)
        network = _invariance_network(cell)
        full = _invariance_full(cell, engine)
        bounds = [0, *sorted(cuts), 8]
        parts = [
            network.infer_batch(spikes[a:b], engine=engine)
            for a, b in zip(bounds, bounds[1:])
            if a < b
        ]
        assert np.array_equal(np.concatenate(parts), full)

    def test_engines_agree_on_the_full_batch(self):
        for cell in ("1RW", "1RW+2R", "1RW+4R"):
            assert np.array_equal(
                _invariance_full(cell, "fast"), _invariance_full(cell, "cycle")
            )


# -- server --------------------------------------------------------------------------


class TestInferenceServer:
    def _registry(self, **kwargs):
        registry = ModelRegistry()
        network = random_network(**kwargs)
        registry.register_network("demo", network)
        return registry, network

    def test_served_predictions_match_offline_classify_batch(self):
        registry, network = self._registry()
        spikes = random_spikes(48)
        with InferenceServer(
            registry, policy=BatchPolicy(max_batch_size=8, max_wait_ms=1.0)
        ) as server:
            futures = [server.submit("demo", row) for row in spikes]
            served = [f.result(timeout=10.0) for f in futures]
        assert np.array_equal(served, network.classify_batch(spikes))
        data = server.metrics.to_dict()
        assert data["completed"] == 48 and data["failed"] == 0
        assert sum(
            int(k) * v for k, v in data["batch_size_hist"].items()
        ) == 48
        assert data["queue_depth_hist"]

    def test_deadline_flush_serves_partial_batches(self):
        registry, _ = self._registry()
        policy = BatchPolicy(max_batch_size=64, max_wait_ms=2.0)
        with InferenceServer(registry, policy=policy) as server:
            # Far fewer requests than a full batch: only the deadline
            # trigger can serve these.
            results = [
                server.classify("demo", row, timeout=5.0)
                for row in random_spikes(3)
            ]
        assert len(results) == 3
        assert all(isinstance(r, int) for r in results)

    def test_backpressure_rejects_and_never_drops(self):
        registry, network = self._registry()
        spikes = random_spikes(6)
        # A batcher that will not flush on its own: the queue must fill.
        policy = BatchPolicy(max_batch_size=100, max_wait_ms=60_000.0)
        server = InferenceServer(
            registry, policy=policy, max_queue_depth=4
        ).start()
        futures = [server.submit("demo", row) for row in spikes[:4]]
        with pytest.raises(QueueFullError, match="max_queue_depth=4"):
            server.submit("demo", spikes[4])
        assert server.metrics.rejected == 1
        assert server.in_flight == 4
        server.stop(drain=True)
        served = [f.result(timeout=1.0) for f in futures]
        assert np.array_equal(served, network.classify_batch(spikes[:4]))
        assert server.in_flight == 0
        assert server.metrics.completed == 4

    def test_stop_without_drain_fails_pending_futures(self):
        registry, _ = self._registry()
        policy = BatchPolicy(max_batch_size=100, max_wait_ms=60_000.0)
        server = InferenceServer(registry, policy=policy).start()
        futures = [server.submit("demo", row) for row in random_spikes(3)]
        server.stop(drain=False)
        for future in futures:
            with pytest.raises(ServingError, match="abandoned"):
                future.result(timeout=1.0)
        assert server.metrics.failed == 3
        assert server.in_flight == 0

    def test_submit_requires_running_server(self):
        registry, _ = self._registry()
        server = InferenceServer(registry)
        with pytest.raises(ServingError, match="not running"):
            server.submit("demo", random_spikes(1)[0])

    def test_submit_validates_model_and_spikes_before_admission(self):
        registry, _ = self._registry()
        with InferenceServer(registry) as server:
            with pytest.raises(ServingError, match="no model named"):
                server.submit("missing", random_spikes(1)[0])
            with pytest.raises(ConfigurationError):
                server.submit("demo", np.full(64, 0.5))
            with pytest.raises(ConfigurationError):
                server.submit("demo", np.zeros(32, dtype=bool))
        assert server.metrics.submitted == 0

    def test_rejects_bad_configuration(self):
        registry, _ = self._registry()
        with pytest.raises(ConfigurationError):
            InferenceServer(registry, max_queue_depth=0)
        with pytest.raises(ConfigurationError):
            InferenceServer(registry, engine="fats")

    def test_serves_multiple_models(self):
        registry = ModelRegistry()
        net_a = random_network(seed=0)
        net_b = random_network(seed=9)
        registry.register_network("a", net_a)
        registry.register_network("b", net_b)
        spikes = random_spikes(10)
        with InferenceServer(
            registry, policy=BatchPolicy(max_batch_size=4, max_wait_ms=1.0)
        ) as server:
            futures = [
                (server.submit("a", row), server.submit("b", row))
                for row in spikes
            ]
            served_a = [fa.result(timeout=10.0) for fa, _ in futures]
            served_b = [fb.result(timeout=10.0) for _, fb in futures]
        assert np.array_equal(served_a, net_a.classify_batch(spikes))
        assert np.array_equal(served_b, net_b.classify_batch(spikes))


# -- CLI -----------------------------------------------------------------------------


class TestServeCli:
    def test_load_test_runs_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "serving.json"
        code = serve_main([
            "--rate", "400", "--duration", "0.25", "--clients", "2",
            "--quality", "fast", "--json", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "bit-identical" in printed
        import json

        report = json.loads(out.read_text())
        assert report["requests"] == 100
        assert report["verified_vs_offline"] is True
        assert report["metrics"]["completed"] == 100
        assert report["metrics"]["failed"] == 0
        assert {"python", "numpy", "platform", "timestamp_utc"} <= set(
            report["environment"]
        )

    def test_rejects_empty_trace(self):
        with pytest.raises(SystemExit):
            serve_main(["--rate", "1", "--duration", "0"])
