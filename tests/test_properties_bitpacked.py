"""Property-based tests of the bit-packed popcount kernel (hypothesis).

The bitpacked backend's correctness rests on two pure-function claims:
packing is lossless (pack/unpack round-trips any binary batch), and
popcount accumulation over packed words equals the dense signed matmul
``spikes @ (2W - 1)`` exactly — for *arbitrary* widths, including
ragged ones not divisible by 64 (where trailing pad bits must never
leak phantom spikes).  Hypothesis sweeps the shape space the
example-based suites cannot.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tile.backends.bitpacked import (
    WORD_BITS,
    bitpacked_delta,
    pack_spike_rows,
    packed_width,
    popcount_accumulate,
    popcount_words,
    unpack_spike_rows,
)

#: Widths straddling word boundaries: 1, 63..66, 127..129, and a
#: three-word ragged tail.
RAGGED_WIDTHS = st.sampled_from(
    [1, 7, 63, 64, 65, 66, 127, 128, 129, 150, 191, 192, 193]
)


def binary_batch(draw, widths=RAGGED_WIDTHS, max_rows: int = 6):
    n = draw(widths)
    rows = draw(st.integers(1, max_rows))
    bits = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n, max_size=n),
            min_size=rows, max_size=rows,
        )
    )
    return np.array(bits, dtype=bool)


@st.composite
def batches(draw):
    return binary_batch(draw)


@st.composite
def batch_and_planes(draw):
    """A spike batch plus a binary weight matrix sharing its width."""
    spikes = binary_batch(draw, max_rows=4)
    n_out = draw(st.integers(1, 5))
    weights = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_out, max_size=n_out),
            min_size=spikes.shape[1], max_size=spikes.shape[1],
        )
    )
    return spikes, np.array(weights, dtype=np.uint8)


class TestPackingRoundTrip:
    @given(batches())
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_is_identity(self, spikes):
        packed = pack_spike_rows(spikes)
        assert packed.dtype == np.uint64
        assert packed.shape == (
            spikes.shape[0], packed_width(spikes.shape[1])
        )
        assert np.array_equal(
            unpack_spike_rows(packed, spikes.shape[1]), spikes
        )

    @given(batches())
    @settings(max_examples=80, deadline=None)
    def test_packed_popcount_equals_row_sum(self, spikes):
        """Pad bits contribute nothing: popcount == number of spikes."""
        packed = pack_spike_rows(spikes)
        counts = popcount_words(packed).sum(axis=1, dtype=np.int64)
        assert np.array_equal(counts, spikes.sum(axis=1))

    @given(st.integers(1, 4 * WORD_BITS + 3))
    @settings(max_examples=40, deadline=None)
    def test_packed_width_is_word_ceiling(self, n_bits):
        width = packed_width(n_bits)
        assert (width - 1) * WORD_BITS < n_bits <= width * WORD_BITS


class TestPopcountAccumulate:
    @given(batch_and_planes())
    @settings(max_examples=80, deadline=None)
    def test_overlap_equals_dense_and(self, data):
        spikes, weights = data
        packed = pack_spike_rows(spikes)
        planes = pack_spike_rows(weights.T)
        overlap = popcount_accumulate(packed, planes)
        dense = spikes.astype(np.int64) @ weights.astype(np.int64)
        assert np.array_equal(overlap, dense)

    @given(batch_and_planes())
    @settings(max_examples=80, deadline=None)
    def test_delta_equals_signed_matmul(self, data):
        """The drain delta matches the fast engine's ``x @ (2W - 1)``
        for arbitrary binary batches and ragged widths."""
        spikes, weights = data
        packed = pack_spike_rows(spikes)
        planes = pack_spike_rows(weights.T)
        delta = bitpacked_delta(packed, planes)
        signed = 2 * weights.astype(np.int64) - 1
        assert np.array_equal(delta, spikes.astype(np.int64) @ signed)
