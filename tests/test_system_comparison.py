"""Table 3 comparison data."""

import pytest

from repro.system.comparison import (
    TABLE3_LITERATURE,
    TABLE3_PAPER_THIS_WORK,
    table3,
    this_work_row,
)


class TestLiteratureRows:
    def test_three_literature_systems(self):
        assert len(TABLE3_LITERATURE) == 3

    def test_wang_row_matches_paper(self):
        wang = TABLE3_LITERATURE[0]
        assert wang.technology_nm == 65
        assert wang.power_w == pytest.approx(305e-9)
        assert wang.throughput_inf_s == 2.0
        assert wang.energy_per_inf_j == pytest.approx(195e-9)

    def test_chen_row_matches_paper(self):
        chen = TABLE3_LITERATURE[1]
        assert chen.neuron_count == 4096
        assert chen.synapse_count == 1_000_000
        assert chen.weight_bits == 7

    def test_kim_row_transposable(self):
        kim = TABLE3_LITERATURE[2]
        assert kim.transposable
        assert kim.energy_per_inf_j is None

    def test_paper_this_work_reference(self):
        ref = TABLE3_PAPER_THIS_WORK
        assert ref.technology_nm == 3
        assert ref.neuron_count == 778
        assert ref.synapse_count == 330_000
        assert ref.throughput_inf_s == pytest.approx(44e6)
        assert ref.energy_per_inf_j == pytest.approx(0.607e-9)
        assert ref.power_w == pytest.approx(29e-3)


class TestMeasuredRow:
    def test_this_work_row_from_metrics(self, rng):
        import numpy as np
        from repro.sram.bitcell import CellType
        from repro.system.energy import SystemEnergyModel
        from repro.system.evaluate import Figure8Row
        from repro.tile.network import EsamNetwork, InferenceTrace

        weights = [rng.integers(0, 2, (128, 10)).astype(np.uint8)]
        net = EsamNetwork(weights, [np.full(10, 511)], cell_type=CellType.C1RW4R)
        trace = InferenceTrace()
        net.infer(rng.random(128) < 0.3, trace)
        metrics = SystemEnergyModel(net).metrics(trace)
        row = this_work_row(
            Figure8Row(cell_type=CellType.C1RW4R, metrics=metrics),
            accuracy_pct=99.0, neuron_count=10, synapse_count=1280,
        )
        assert row.technology_nm == 3
        assert row.transposable
        assert row.clock_frequency_hz == pytest.approx(810e6, rel=2e-3)
        full = table3(row)
        assert len(full) == 4
        assert full[-1] is row
