"""Cascaded-tile network: end-to-end correctness and traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.snn.model import BinarySNN
from repro.sram.bitcell import CellType
from repro.tile.network import EsamNetwork, InferenceTrace


def build_random_network(rng, sizes=(256, 128, 64, 10),
                         cell=CellType.C1RW4R) -> tuple[EsamNetwork, BinarySNN]:
    weights = [
        rng.integers(0, 2, (a, b)).astype(np.uint8)
        for a, b in zip(sizes[:-1], sizes[1:])
    ]
    thresholds = [
        rng.integers(-5, 15, b) for b in sizes[1:-1]
    ] + [np.full(sizes[-1], 511)]
    bias = rng.normal(0, 2, sizes[-1])
    net = EsamNetwork(weights, thresholds, output_bias=bias, cell_type=cell)
    ref = BinarySNN(weights, thresholds, bias)
    return net, ref


class TestEquivalenceWithFunctionalModel:
    @pytest.mark.parametrize("cell", [CellType.C6T, CellType.C1RW2R,
                                      CellType.C1RW4R])
    def test_scores_match(self, rng, cell):
        net, ref = build_random_network(rng, cell=cell)
        for _ in range(4):
            spikes = rng.random(256) < 0.3
            hw = net.infer(spikes)
            sw = ref.forward(spikes)[0]
            assert np.allclose(hw, sw)

    def test_classification_matches(self, rng):
        net, ref = build_random_network(rng)
        spikes = (rng.random((8, 256)) < 0.3)
        hw = np.array([net.classify(s) for s in spikes])
        sw = ref.classify(spikes)
        assert (hw == sw).all()


class TestTrace:
    def test_trace_accumulates(self, rng):
        net, _ = build_random_network(rng)
        trace = InferenceTrace()
        for _ in range(3):
            net.infer(rng.random(256) < 0.3, trace)
        assert trace.images == 3
        assert len(trace.per_tile_cycles) == 3
        assert trace.bottleneck_cycles >= 1
        assert trace.latency_cycles >= trace.bottleneck_cycles

    def test_empty_trace(self):
        trace = InferenceTrace()
        assert trace.bottleneck_cycles == 0
        assert trace.latency_cycles == 0


class TestStructure:
    def test_layer_sizes(self, rng):
        net, _ = build_random_network(rng)
        assert net.layer_sizes == [256, 128, 64, 10]

    def test_paper_counts(self, rng):
        """Paper network: 778 neurons, 330K synapses."""
        sizes = (768, 256, 256, 256, 10)
        weights = [
            rng.integers(0, 2, (a, b)).astype(np.uint8)
            for a, b in zip(sizes[:-1], sizes[1:])
        ]
        thresholds = [np.zeros(b, dtype=np.int64) for b in sizes[1:]]
        net = EsamNetwork(weights, thresholds)
        assert net.neuron_count == 778
        assert net.synapse_count == 330_240

    def test_clock_period_follows_cell(self, rng):
        net, _ = build_random_network(rng, cell=CellType.C1RW4R)
        assert net.clock_period_ns == pytest.approx(1.2346, rel=1e-3)

    def test_width_mismatch_rejected(self, rng):
        w1 = rng.integers(0, 2, (64, 32)).astype(np.uint8)
        w2 = rng.integers(0, 2, (48, 10)).astype(np.uint8)
        with pytest.raises(ConfigurationError):
            EsamNetwork([w1, w2], [np.zeros(32), np.zeros(10)])

    def test_bias_shape_checked(self, rng):
        w = rng.integers(0, 2, (64, 10)).astype(np.uint8)
        with pytest.raises(ConfigurationError):
            EsamNetwork([w], [np.zeros(10)], output_bias=np.zeros(5))

    def test_reset_stats(self, rng):
        net, _ = build_random_network(rng)
        net.infer(rng.random(256) < 0.3)
        net.reset_stats()
        assert net.dynamic_energy_pj() == 0.0
