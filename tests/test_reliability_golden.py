"""Campaign parity: the reliability path reproduces its golden capture.

``tests/golden/reliability_fast8.json`` was captured at the
introduction of :mod:`repro.reliability` (PR 5): the named
``reliability`` campaign at ``quality="fast"``, 8 sample images, 2
trials over BER (0, 1e-3, 5e-2) x corner (typical/slow/fast), stored
with full ``repr`` float precision — mirroring
``tests/test_parity_golden.py`` for the sweep path.  Every mask
derives from the config seed and the timing yield from a seeded
Monte-Carlo, so the run must be bit-identical, no tolerance.

If a deliberate modelling change ever breaks this, re-capture the
golden file in the same commit and say so in the commit message.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.reliability import ReliabilityRunner, reliability_spec
from repro.reliability.__main__ import main as reliability_main

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "reliability_fast8.json"
)


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def result(golden):
    config = golden["config"]
    spec = reliability_spec(
        trials=config["trials"], sample_images=config["sample_images"],
        quality=config["quality"], seed=config["seed"],
        bers=tuple(config["bers"]), corners=tuple(config["corners"]),
    )
    return ReliabilityRunner(spec, cache=None).run()


class TestGoldenCampaign:
    def test_nominal_yield_curve_bit_identical(self, golden, result):
        assert result.claims_curve().to_dict() == golden["nominal_curve"]

    def test_nominal_rows_bit_identical(self, golden, result):
        nominal = [
            r.to_dict() for r in result.rows if r.point.corner == "typical"
        ]
        assert nominal == golden["nominal_rows"]

    def test_claims_rendering_pinned(self, golden, result):
        assert result.render_claims() == golden["claims"]

    def test_cli_claims_output_pinned(self, golden, capsys):
        """`python -m repro.reliability --claims` prints exactly the
        golden claims block for the golden configuration."""
        config = golden["config"]
        code = reliability_main([
            "--quality", config["quality"],
            "--sample-images", str(config["sample_images"]),
            "--trials", str(config["trials"]),
            "--bers", ",".join(repr(b) for b in config["bers"]),
            "--seed", str(config["seed"]),
            "--no-cache", "--claims",
        ])
        assert code == 0
        assert golden["claims"] in capsys.readouterr().out
