"""Gate library and netlist graph."""

import pytest

from repro.arbiter.gates import STD_CELLS, Netlist
from repro.errors import ConfigurationError, SimulationError


class TestGateEvaluation:
    @pytest.mark.parametrize("a,b,expected", [
        (False, False, True), (False, True, True),
        (True, False, True), (True, True, False),
    ])
    def test_nand2(self, a, b, expected):
        assert STD_CELLS["NAND2"].evaluate((a, b)) is expected

    def test_inv(self):
        assert STD_CELLS["INV"].evaluate((True,)) is False

    def test_andnot(self):
        assert STD_CELLS["ANDNOT2"].evaluate((True, False)) is True
        assert STD_CELLS["ANDNOT2"].evaluate((True, True)) is False

    def test_mux2(self):
        # (select, in1, in0)
        assert STD_CELLS["MUX2"].evaluate((True, True, False)) is True
        assert STD_CELLS["MUX2"].evaluate((False, True, False)) is False

    def test_and3(self):
        assert STD_CELLS["AND3"].evaluate((True, True, True)) is True
        assert STD_CELLS["AND3"].evaluate((True, True, False)) is False

    def test_wrong_arity_rejected(self):
        with pytest.raises(SimulationError):
            STD_CELLS["AND2"].evaluate((True,))


class TestNetlist:
    def _xor_netlist(self) -> Netlist:
        """a XOR b from NAND gates."""
        net = Netlist("xor")
        net.add_input("a")
        net.add_input("b")
        net.add_gate("NAND2", "n1", "a", "b")
        net.add_gate("NAND2", "n2", "a", "n1")
        net.add_gate("NAND2", "n3", "b", "n1")
        net.add_gate("NAND2", "y", "n2", "n3")
        return net

    @pytest.mark.parametrize("a", [False, True])
    @pytest.mark.parametrize("b", [False, True])
    def test_xor_truth_table(self, a, b):
        values = self._xor_netlist().evaluate({"a": a, "b": b})
        assert values["y"] is (a != b)

    def test_critical_path(self):
        net = self._xor_netlist()
        # Longest path: 3 NAND2 levels.
        assert net.critical_path_ps() == pytest.approx(
            3 * STD_CELLS["NAND2"].delay_ps
        )

    def test_critical_path_to_named_output(self):
        net = self._xor_netlist()
        assert net.critical_path_ps(["n1"]) == pytest.approx(
            STD_CELLS["NAND2"].delay_ps
        )

    def test_area(self):
        assert self._xor_netlist().area_ge() == pytest.approx(4.0)

    def test_switching_energy_scales_with_activity(self):
        net = self._xor_netlist()
        assert net.switching_energy_fj(0.4) == pytest.approx(
            2.0 * net.switching_energy_fj(0.2)
        )

    def test_duplicate_net_rejected(self):
        net = Netlist("dup")
        net.add_input("a")
        with pytest.raises(ConfigurationError):
            net.add_input("a")

    def test_undefined_input_rejected(self):
        net = Netlist("bad")
        net.add_input("a")
        with pytest.raises(ConfigurationError):
            net.add_gate("INV", "y", "nonexistent")

    def test_unknown_gate_rejected(self):
        net = Netlist("bad")
        net.add_input("a")
        with pytest.raises(ConfigurationError):
            net.add_gate("XNOR9", "y", "a")

    def test_missing_input_value_rejected(self):
        net = self._xor_netlist()
        with pytest.raises(SimulationError):
            net.evaluate({"a": True})

    def test_unknown_output_rejected(self):
        with pytest.raises(SimulationError):
            self._xor_netlist().critical_path_ps(["zzz"])

    def test_bad_activity_rejected(self):
        with pytest.raises(ConfigurationError):
            self._xor_netlist().switching_energy_fj(1.5)
