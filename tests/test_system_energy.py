"""System energy/power roll-up."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import CellType
from repro.system.energy import SystemEnergyModel, SystemMetrics
from repro.tile.network import EsamNetwork, InferenceTrace


@pytest.fixture()
def small_network(rng) -> EsamNetwork:
    sizes = (128, 64, 10)
    weights = [
        rng.integers(0, 2, (a, b)).astype(np.uint8)
        for a, b in zip(sizes[:-1], sizes[1:])
    ]
    thresholds = [rng.integers(-5, 10, 64), np.full(10, 511)]
    return EsamNetwork(weights, thresholds, cell_type=CellType.C1RW4R)


class TestMetrics:
    def test_roll_up(self, small_network, rng):
        model = SystemEnergyModel(small_network)
        trace = InferenceTrace()
        for _ in range(4):
            small_network.infer(rng.random(128) < 0.3, trace)
        metrics = model.metrics(trace)
        assert metrics.energy_per_inference_pj > 0.0
        assert metrics.throughput_inf_s > 0.0
        assert metrics.cycles_per_inference >= 1.0
        assert metrics.latency_ns >= metrics.inference_time_ns

    def test_power_identity(self, small_network, rng):
        """power = energy/inference x throughput."""
        model = SystemEnergyModel(small_network)
        trace = InferenceTrace()
        small_network.infer(rng.random(128) < 0.3, trace)
        m = model.metrics(trace)
        assert m.power_mw == pytest.approx(
            m.energy_per_inference_pj * m.throughput_inf_s * 1e-9
        )

    def test_bottleneck_is_max_tile(self, small_network, rng):
        model = SystemEnergyModel(small_network)
        trace = InferenceTrace()
        small_network.infer(rng.random(128) < 0.3, trace)
        assert trace.bottleneck_cycles == max(trace.per_tile_cycles)
        m = model.metrics(trace)
        assert m.inference_time_ns == pytest.approx(
            trace.bottleneck_cycles * small_network.clock_period_ns
        )

    def test_empty_trace_rejected(self, small_network):
        with pytest.raises(ConfigurationError):
            SystemEnergyModel(small_network).metrics(InferenceTrace())

    def test_energy_components_sum(self, small_network, rng):
        model = SystemEnergyModel(small_network)
        trace = InferenceTrace()
        small_network.infer(rng.random(128) < 0.3, trace)
        m = model.metrics(trace)
        assert m.energy_per_inference_pj == pytest.approx(
            m.dynamic_energy_pj + m.clock_energy_pj + m.leakage_energy_pj
        )

    def test_more_spikes_cost_more(self, small_network, rng):
        model = SystemEnergyModel(small_network)
        sparse_trace = InferenceTrace()
        small_network.infer(rng.random(128) < 0.05, sparse_trace)
        sparse = model.metrics(sparse_trace).dynamic_energy_pj
        small_network.reset_stats()
        dense_trace = InferenceTrace()
        small_network.infer(rng.random(128) < 0.8, dense_trace)
        dense = model.metrics(dense_trace).dynamic_energy_pj
        assert dense > sparse
