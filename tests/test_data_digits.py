"""Synthetic digit dataset (the MNIST substitute)."""

import numpy as np
import pytest

from repro.data.digits import IMAGE_SIZE, DigitGenerator, render_digit
from repro.data.loader import load_dataset
from repro.errors import ConfigurationError


class TestRenderDigit:
    def test_shape_and_range(self):
        img = render_digit(3, np.random.default_rng(0))
        assert img.shape == (IMAGE_SIZE, IMAGE_SIZE)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_all_classes_render_nonempty(self):
        for digit in range(10):
            img = render_digit(digit, np.random.default_rng(1))
            assert img.sum() > 5.0, f"digit {digit} rendered empty"

    def test_canonical_glyphs_differ(self):
        """Without jitter, the ten classes are pairwise distinct."""
        glyphs = [render_digit(d, jitter=False) for d in range(10)]
        for i in range(10):
            for j in range(i + 1, 10):
                diff = np.abs(glyphs[i] - glyphs[j]).mean()
                assert diff > 0.01, (i, j)

    def test_jitter_varies_instances(self):
        rng = np.random.default_rng(7)
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert np.abs(a - b).mean() > 1e-3

    def test_rejects_bad_digit(self):
        with pytest.raises(ConfigurationError):
            render_digit(10)


class TestDigitGenerator:
    def test_deterministic(self):
        a_imgs, a_labels = DigitGenerator(seed=3).generate(20)
        b_imgs, b_labels = DigitGenerator(seed=3).generate(20)
        assert (a_labels == b_labels).all()
        assert np.allclose(a_imgs, b_imgs)

    def test_respects_class_subset(self):
        _, labels = DigitGenerator(seed=1).generate(50, classes=(3, 7))
        assert set(labels.tolist()).issubset({3, 7})

    def test_rejects_bad_args(self):
        gen = DigitGenerator()
        with pytest.raises(ConfigurationError):
            gen.generate(0)
        with pytest.raises(ConfigurationError):
            gen.generate(5, classes=())


class TestLoader:
    def test_split_sizes(self):
        ds = load_dataset(n_train=100, n_test=40, seed=9)
        assert ds.n_train == 100 and ds.n_test == 40

    def test_cached(self):
        a = load_dataset(50, 20, seed=11)
        b = load_dataset(50, 20, seed=11)
        assert a is b

    def test_train_test_disjoint_generators(self):
        ds = load_dataset(60, 60, seed=13)
        # Different generator seeds: the splits are not identical.
        assert not np.allclose(ds.train_images[:10], ds.test_images[:10])

    def test_class_balance_roughly_uniform(self):
        ds = load_dataset(1000, 10, seed=17)
        balance = ds.class_balance()
        assert balance.min() > 0.05 and balance.max() < 0.16

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            load_dataset(0, 10)
