"""Sweep engine: spec expansion, sharding parity, caching, CLI.

The heart of this suite is the determinism contract: a sweep must
produce bit-identical rows whether it runs in-process, across four
worker processes, or straight out of the on-disk cache — and the cache
must invalidate when the weights or any point parameter changes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.learning.convert import ConvertedSNN
from repro.sram.bitcell import ALL_CELLS, CellType
from repro.sweep import (
    NAMED_SWEEPS,
    DesignPoint,
    ResultCache,
    SweepResult,
    SweepRunner,
    SweepSpec,
    figure8_spec,
    point_key,
    vprech_spec,
    weights_fingerprint,
)
from repro.sweep.__main__ import main as sweep_main
from repro.system.config import SystemConfig
from repro.system.evaluate import SystemEvaluator

QUALITY = "fast"
SAMPLE = 8


def small_spec(name="small", cells=(CellType.C6T, CellType.C1RW4R),
               sample_images=SAMPLE) -> SweepSpec:
    return SweepSpec(
        name=name, cell_types=cells, sample_images=(sample_images,),
        quality=QUALITY,
    )


class TestSpec:
    def test_expand_is_cartesian_and_ordered(self):
        spec = SweepSpec(
            name="grid", cell_types=(CellType.C6T, CellType.C1RW4R),
            vprechs=(0.4, 0.5), engines=("fast",), sample_images=(4,),
            quality=QUALITY,
        )
        points = spec.expand()
        assert len(points) == len(spec) == 4
        # Deterministic lexicographic order, cells outermost.
        assert [(p.cell_type, p.vprech) for p in points] == [
            (CellType.C6T, 0.4), (CellType.C6T, 0.5),
            (CellType.C1RW4R, 0.4), (CellType.C1RW4R, 0.5),
        ]
        # Expanding twice yields equal (hashable) points.
        assert points == spec.expand()
        assert len(set(points)) == 4

    def test_over_ports_maps_to_cells(self):
        spec = SweepSpec.over_ports((1, 4), quality=QUALITY)
        assert spec.cell_types == (CellType.C1RW1R, CellType.C1RW4R)

    def test_point_validation_is_early(self):
        with pytest.raises(ConfigurationError, match="engine"):
            DesignPoint(cell_type=CellType.C6T, engine="warp")
        with pytest.raises(ConfigurationError, match="vprech"):
            DesignPoint(cell_type=CellType.C6T, vprech=0.9)
        with pytest.raises(ConfigurationError, match="sample_images"):
            DesignPoint(cell_type=CellType.C6T, sample_images=0)
        with pytest.raises(ConfigurationError, match="quality"):
            DesignPoint(cell_type=CellType.C6T, quality="best")
        with pytest.raises(ConfigurationError, match="cell_type"):
            DesignPoint(cell_type="1RW+4R")

    def test_point_dict_roundtrip(self):
        point = DesignPoint(cell_type=CellType.C1RW2R, vprech=0.6,
                            sample_images=4, quality=QUALITY, seed=7)
        assert DesignPoint.from_dict(point.to_dict()) == point

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="axis"):
            SweepSpec(name="bad", cell_types=())

    def test_named_sweeps_registry(self):
        assert set(NAMED_SWEEPS) == {
            "figure8", "vprech", "ports", "engines", "corners",
        }
        for factory in NAMED_SWEEPS.values():
            spec = factory(sample_images=4, quality=QUALITY)
            assert len(spec.expand()) == len(spec) > 0

    def test_corners_spec_walks_node_corner_grid(self):
        spec = NAMED_SWEEPS["corners"](sample_images=4, quality=QUALITY)
        points = spec.expand()
        assert len(points) == 2 * 2 * 3  # cells x nodes x corners
        assert {(p.node, p.corner) for p in points} == {
            (node, corner)
            for node in ("3nm", "5nm")
            for corner in ("typical", "slow", "fast")
        }
        # Both claims anchors are present at every (node, corner).
        assert {p.cell_type for p in points} == {
            CellType.C6T, CellType.C1RW4R,
        }

    def test_point_hardware_view(self):
        from repro.hw import HardwareConfig

        point = DesignPoint(cell_type=CellType.C1RW2R, vprech=0.6,
                            node="5nm", corner="slow", quality=QUALITY)
        assert point.hardware == HardwareConfig(
            cell_type=CellType.C1RW2R, vprech=0.6, node="5nm", corner="slow",
        )
        hw = HardwareConfig(cell_type=CellType.C6T, corner="fast", seed=7)
        from_hw = DesignPoint(hardware=hw, quality=QUALITY)
        assert from_hw.cell_type is CellType.C6T
        assert from_hw.corner == "fast"
        assert from_hw.seed == 7

    def test_point_rejects_unknown_node_and_corner(self):
        with pytest.raises(ConfigurationError, match="node"):
            DesignPoint(cell_type=CellType.C6T, node="1nm")
        with pytest.raises(ConfigurationError, match="corner"):
            DesignPoint(cell_type=CellType.C6T, corner="cryo")


class TestShardingParity:
    def test_serial_and_sharded_runs_are_bit_identical(self, tmp_path):
        spec = small_spec()
        serial = SweepRunner(spec, n_workers=1,
                             cache=ResultCache(tmp_path / "a")).run()
        sharded = SweepRunner(spec, n_workers=4,
                              cache=ResultCache(tmp_path / "b")).run()
        assert serial.stats.evaluated == sharded.stats.evaluated == len(spec)
        for a, b in zip(serial.rows, sharded.rows):
            assert a.point == b.point
            assert a.metrics == b.metrics  # exact float equality

    def test_sharded_figure8_matches_evaluator_bit_identically(self, tmp_path):
        """Acceptance: n_workers=4 reproduces SystemEvaluator.figure8()."""
        evaluator = SystemEvaluator(
            SystemConfig(sample_images=SAMPLE), quality=QUALITY,
        )
        expected = evaluator.figure8()
        result = SweepRunner(
            figure8_spec(sample_images=SAMPLE, quality=QUALITY),
            n_workers=4, cache=ResultCache(tmp_path),
        ).run()
        assert [r.point.cell_type for r in result.rows] == list(ALL_CELLS)
        for got, want in zip(result.figure8_rows(), expected):
            assert got.cell_type == want.cell_type
            assert got.metrics == want.metrics  # bit-identical

    def test_injected_evaluator_requires_single_worker(self):
        evaluator = SystemEvaluator(
            SystemConfig(sample_images=SAMPLE), quality=QUALITY,
        )
        with pytest.raises(ConfigurationError, match="sharded"):
            SweepRunner(small_spec(), n_workers=2, evaluator=evaluator)

    def test_injected_evaluator_must_match_spec(self):
        """A mismatched evaluator would cache rows under the wrong config."""
        evaluator = SystemEvaluator(
            SystemConfig(sample_images=4), quality=QUALITY,
        )
        with pytest.raises(ConfigurationError, match="does not match"):
            SweepRunner(small_spec(sample_images=8), evaluator=evaluator)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError, match="n_workers"):
            SweepRunner(small_spec(), n_workers=0)


class TestCache:
    def test_warm_cache_skips_every_evaluation(self, tmp_path):
        """Acceptance: warm figure-8 re-run does zero network evaluations."""
        spec = figure8_spec(sample_images=SAMPLE, quality=QUALITY)
        cache = ResultCache(tmp_path)
        cold = SweepRunner(spec, cache=cache).run()
        assert cold.stats.evaluated == len(spec)
        assert cold.stats.cache_hits == 0
        warm = SweepRunner(spec, cache=ResultCache(tmp_path)).run()
        assert warm.stats.evaluated == 0
        assert warm.stats.cache_hits == len(spec)
        for a, b in zip(cold.rows, warm.rows):
            assert a.metrics == b.metrics  # cache round-trip is lossless
            assert not a.cached and b.cached

    def test_overlapping_sweep_reuses_shared_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(vprech_spec(sample_images=SAMPLE, quality=QUALITY),
                    cache=cache).run()
        fig8 = SweepRunner(figure8_spec(sample_images=SAMPLE, quality=QUALITY),
                           cache=cache).run()
        # The 1RW+4R@500mV point is shared between the two grids.
        assert fig8.stats.cache_hits == 1
        assert fig8.stats.evaluated == 4

    def test_cache_invalidates_when_weights_change(self, tmp_path, fast_model):
        cache = ResultCache(tmp_path)
        spec = small_spec(cells=(CellType.C1RW4R,))
        snn_a = fast_model.snn
        run_a = SweepRunner(spec, cache=cache, snn=snn_a).run()
        assert run_a.stats.evaluated == 1

        # Flip one weight bit: a different network must be a cache miss.
        weights = [w.copy() for w in snn_a.weights]
        weights[0][0, 0] ^= 1
        snn_b = ConvertedSNN(weights=weights, thresholds=snn_a.thresholds,
                             output_bias=snn_a.output_bias)
        assert weights_fingerprint(snn_a) != weights_fingerprint(snn_b)
        run_b = SweepRunner(spec, cache=cache, snn=snn_b).run()
        assert run_b.stats.evaluated == 1
        assert run_b.stats.cache_hits == 0
        # And the original still hits.
        run_a2 = SweepRunner(spec, cache=cache, snn=snn_a).run()
        assert run_a2.stats.cache_hits == 1

    def test_cache_invalidates_when_config_changes(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec_8 = small_spec(cells=(CellType.C6T,), sample_images=8)
        spec_4 = small_spec(cells=(CellType.C6T,), sample_images=4)
        SweepRunner(spec_8, cache=cache).run()
        changed = SweepRunner(spec_4, cache=cache).run()
        assert changed.stats.evaluated == 1
        assert changed.stats.cache_hits == 0

    def test_point_key_depends_on_every_field(self, fast_model):
        fp = weights_fingerprint(fast_model.snn)
        base = DesignPoint(cell_type=CellType.C6T, quality=QUALITY)
        keys = {point_key(base, fp)}
        for variant in (
            dataclasses.replace(base, cell_type=CellType.C1RW4R),
            dataclasses.replace(base, vprech=0.6),
            dataclasses.replace(base, sample_images=16),
            dataclasses.replace(base, engine="cycle"),
            dataclasses.replace(base, seed=7),
            dataclasses.replace(base, node="5nm"),
            dataclasses.replace(base, corner="slow"),
        ):
            keys.add(point_key(variant, fp))
        keys.add(point_key(base, "0" * 64))
        assert len(keys) == 9

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec(cells=(CellType.C6T,))
        first = SweepRunner(spec, cache=cache).run()
        assert first.stats.evaluated == 1
        for path in tmp_path.glob("*/*.json"):
            path.write_text("{not json")
        again = SweepRunner(spec, cache=cache).run()
        assert again.stats.evaluated == 1  # corrupt entry re-evaluated

    def test_cache_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepRunner(small_spec(), cache=cache).run()
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestStore:
    def test_json_roundtrip_is_lossless(self, tmp_path):
        result = SweepRunner(small_spec(), cache=None).run()
        loaded = SweepResult.from_json(result.to_json(tmp_path / "r.json"))
        assert loaded.spec_name == result.spec_name
        assert loaded.stats.evaluated == result.stats.evaluated
        for a, b in zip(loaded.rows, result.rows):
            assert a.point == b.point
            assert a.metrics == b.metrics

    def test_csv_export(self, tmp_path):
        result = SweepRunner(small_spec(), cache=None).run()
        path = result.to_csv(tmp_path / "r.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(result.rows)
        header = lines[0].split(",")
        for column in ("cell_type", "vprech", "engine",
                       "throughput_minf_s", "energy_per_inf_pj"):
            assert column in header

    def test_empty_csv_export_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="rows"):
            SweepResult(spec_name="empty").to_csv(tmp_path / "r.csv")

    def test_claims_recomputed_from_cached_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = figure8_spec(sample_images=SAMPLE, quality=QUALITY)
        SweepRunner(spec, cache=cache).run()
        warm = SweepRunner(spec, cache=cache).run()
        assert warm.stats.evaluated == 0
        claims = warm.headline_claims()
        assert claims.speedup_vs_1rw > 1.0
        assert claims.energy_efficiency_vs_1rw > 1.0
        assert np.isnan(claims.accuracy)

    def test_render_mentions_cache_state(self):
        result = SweepRunner(small_spec(), cache=None).run()
        text = result.render()
        assert "small" in text and "eval" in text


class TestHardwareFidelity:
    def test_clock_pinned_point_evaluates_at_the_pinned_clock(self, fast_model):
        """The clock override must survive the whole evaluation path."""
        from repro.hw import HardwareConfig
        from repro.sweep import evaluate_point

        base = DesignPoint(cell_type=CellType.C1RW4R, quality=QUALITY,
                           sample_images=2)
        pinned = DesignPoint(
            hardware=HardwareConfig(clock_period_ns=2.0),
            quality=QUALITY, sample_images=2,
        )
        nominal = evaluate_point(base, fast_model.snn)
        overridden = evaluate_point(pinned, fast_model.snn)
        assert overridden.clock_period_ns == 2.0
        assert nominal.clock_period_ns != overridden.clock_period_ns

    def test_claims_on_corner_grid_use_the_nominal_group(self):
        """A node/corner grid derives claims at 3nm/typical, not at
        whichever group happens to sort last."""
        from repro.sweep.store import SweepRow
        from repro.system.energy import SystemMetrics

        def metrics(label, t_ns):
            return SystemMetrics(
                cell_type_label=label, clock_period_ns=1.0,
                cycles_per_inference=t_ns, latency_ns=t_ns,
                inference_time_ns=t_ns, dynamic_energy_pj=100.0,
                clock_energy_pj=10.0, leakage_energy_pj=10.0,
                area_um2=1000.0,
            )

        rows = []
        # 3nm/typical: 3x speedup; 5nm/fast: 5x speedup.
        for node, corner, base_t, best_t in (
            ("3nm", "typical", 30.0, 10.0), ("5nm", "fast", 50.0, 10.0),
        ):
            for cell, t in ((CellType.C6T, base_t), (CellType.C1RW4R, best_t)):
                point = DesignPoint(cell_type=cell, node=node, corner=corner,
                                    quality=QUALITY)
                rows.append(SweepRow(point=point,
                                     metrics=metrics(cell.value, t)))
        result = SweepResult(spec_name="corners", rows=rows)
        assert result.claims_group() == ("3nm", "typical")
        assert result.headline_claims().speedup_vs_1rw == pytest.approx(3.0)
        assert result.headline_claims(
            node="5nm", corner="fast"
        ).speedup_vs_1rw == pytest.approx(5.0)
        # A partial override fills the missing half with the nominal
        # default instead of mixing corners: there are no 5nm/typical
        # rows here, so this must fail loudly, not report 5nm/fast.
        with pytest.raises(ConfigurationError):
            result.headline_claims(node="5nm")


class TestEarlyEngineValidation:
    def test_evaluate_cell_rejects_unknown_engine_before_simulation(
            self, fast_model):
        evaluator = SystemEvaluator(
            SystemConfig(sample_images=2), snn=fast_model.snn,
        )
        with pytest.raises(ConfigurationError, match="engine"):
            evaluator.evaluate_cell(CellType.C6T, engine="fats")


class TestCli:
    def test_list(self, capsys):
        assert sweep_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in NAMED_SWEEPS:
            assert name in out

    def test_named_run_with_outputs(self, tmp_path, capsys):
        code = sweep_main([
            "vprech", "--sample-images", "4", "--quality", QUALITY,
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "v.json"),
            "--csv", str(tmp_path / "v.csv"),
        ])
        assert code == 0
        assert (tmp_path / "v.json").exists()
        assert (tmp_path / "v.csv").exists()
        out = capsys.readouterr().out
        assert "sweep 'vprech'" in out
        loaded = SweepResult.from_json(tmp_path / "v.json")
        assert len(loaded.rows) == 4

    def test_corner_flags_narrow_the_corners_sweep(self, tmp_path, capsys):
        """Explicit --node/--corner restrict the swept grid rather than
        being silently dropped."""
        code = sweep_main([
            "corners", "--sample-images", "2", "--quality", QUALITY,
            "--node", "3nm", "--corner", "slow",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(2 evaluated" in out
        assert "slow" in out
        assert "5nm" not in out
        assert "typical" not in out

    def test_config_file_pin_narrows_the_corners_sweep(self, tmp_path, capsys):
        """A value pinned via --config narrows a swept axis exactly like
        the explicit flag does."""
        import json

        from repro.hw import HardwareConfig

        cfg = tmp_path / "hw.json"
        cfg.write_text(json.dumps(HardwareConfig(corner="slow").to_dict()))
        code = sweep_main([
            "corners", "--sample-images", "2", "--quality", QUALITY,
            "--node", "3nm", "--config", str(cfg),
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        # --node flag + --config corner pin: 2 cells x 1 node x 1 corner.
        assert "(2 evaluated" in out
        assert "| slow" in out
        assert "| typical" not in out

    def test_claims_on_non_figure8_sweep_fails_cleanly(self, tmp_path, capsys):
        code = sweep_main([
            "vprech", "--sample-images", "4", "--quality", QUALITY,
            "--cache-dir", str(tmp_path), "--claims",
        ])
        assert code == 1
        assert "figure-8" in capsys.readouterr().err
