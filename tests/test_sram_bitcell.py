"""Bitcell topology and area model (paper section 4.2)."""

import pytest

from repro.errors import ConfigurationError
from repro.sram.bitcell import (
    ALL_CELLS,
    AREA_RATIO,
    FIFTH_PORT_AREA_INCREMENT,
    CellType,
    bitcell_spec,
    hypothetical_cell_area_ratio,
    transistor_count,
)
from repro.tech.constants import IMEC_3NM


class TestCellType:
    def test_extra_read_ports(self):
        assert CellType.C6T.extra_read_ports == 0
        assert CellType.C1RW4R.extra_read_ports == 4

    def test_inference_ports_6t_uses_rw_port(self):
        assert CellType.C6T.inference_ports == 1
        assert CellType.C1RW1R.inference_ports == 1
        assert CellType.C1RW4R.inference_ports == 4

    def test_only_multiport_transposable(self):
        assert not CellType.C6T.is_transposable
        for cell in ALL_CELLS[1:]:
            assert cell.is_transposable

    def test_from_ports_roundtrip(self):
        for cell in ALL_CELLS:
            assert CellType.from_ports(cell.extra_read_ports) is cell

    def test_from_ports_rejects_5(self):
        with pytest.raises(ConfigurationError):
            CellType.from_ports(5)

    def test_labels_match_paper(self):
        assert [c.value for c in ALL_CELLS] == [
            "1RW", "1RW+1R", "1RW+2R", "1RW+3R", "1RW+4R",
        ]


class TestTransistorCount:
    def test_6t(self):
        assert transistor_count(CellType.C6T) == 6

    def test_multiport_adds_shared_buffer_plus_one_per_port(self):
        # 6T core + M7 + M8..M11 (Figure 3a).
        assert transistor_count(CellType.C1RW1R) == 8
        assert transistor_count(CellType.C1RW4R) == 11


class TestAreas:
    def test_6t_area_matches_paper(self):
        spec = bitcell_spec(CellType.C6T)
        assert spec.area_um2 == pytest.approx(0.01512)

    def test_paper_area_ratios(self):
        """Paper: 1.5x, 1.875x, 2.25x and 2.625x larger respectively."""
        assert AREA_RATIO[CellType.C1RW1R] == 1.5
        assert AREA_RATIO[CellType.C1RW2R] == 1.875
        assert AREA_RATIO[CellType.C1RW3R] == 2.25
        assert AREA_RATIO[CellType.C1RW4R] == 2.625

    def test_spec_area_follows_ratio(self):
        for cell in ALL_CELLS:
            spec = bitcell_spec(cell)
            assert spec.area_um2 == pytest.approx(0.01512 * AREA_RATIO[cell])

    def test_height_constant_width_grows(self):
        """Ports widen the cell; the fin grid pins the height."""
        heights = {bitcell_spec(c).height_um for c in ALL_CELLS}
        assert len(heights) == 1
        widths = [bitcell_spec(c).width_um for c in ALL_CELLS]
        assert widths == sorted(widths)

    def test_fifth_port_costs_87_5_percent(self):
        """Paper: a 5th port would add 87.5 % of the 6T area."""
        assert FIFTH_PORT_AREA_INCREMENT == pytest.approx(0.875)
        assert hypothetical_cell_area_ratio(5) == pytest.approx(2.625 + 0.875)

    def test_hypothetical_matches_real_cells(self):
        for cell in ALL_CELLS:
            assert hypothetical_cell_area_ratio(cell.extra_read_ports) == (
                pytest.approx(AREA_RATIO[cell])
            )

    def test_hypothetical_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            hypothetical_cell_area_ratio(-1)


class TestSpec:
    def test_wl_narrowed_only_on_multiport(self):
        assert bitcell_spec(CellType.C6T).wl_width_factor == 1.0
        for cell in ALL_CELLS[1:]:
            assert bitcell_spec(cell).wl_width_factor < 1.0

    def test_leakage_ratio_tracks_transistors(self):
        assert bitcell_spec(CellType.C1RW4R).leakage_transistor_ratio == (
            pytest.approx(11.0 / 6.0)
        )

    def test_node_attached(self):
        assert bitcell_spec(CellType.C6T).node is IMEC_3NM
