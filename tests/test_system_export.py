"""CSV export of the reproduced figure data."""

import csv

import pytest

from repro.errors import ConfigurationError
from repro.sram.electrical import TransposedPortModel
from repro.sram.readport import ReadPortModel
from repro.system.export import (
    export_figure6,
    export_figure7,
    export_table2,
)
from repro.tile.pipeline import PipelineModel


class TestExports:
    def test_figure6_roundtrip(self, tmp_path, transposed_model):
        path = export_figure6(transposed_model.figure6(), tmp_path / "f6.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        assert rows[0]["cell"] == "1RW"
        assert float(rows[4]["read_time_ns"]) == pytest.approx(2.475, rel=1e-3)

    def test_figure7_roundtrip(self, tmp_path, read_port_model):
        path = export_figure7(read_port_model.figure7(), tmp_path / "f7.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 16
        extended = [r for r in rows if r["extended_precharge"] == "1"]
        assert len(extended) == 2  # 400 mV with 3 and 4 ports

    def test_table2_roundtrip(self, tmp_path):
        path = export_table2(PipelineModel().table2(), tmp_path / "t2.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        clock = [float(r["clock_period_ns"]) for r in rows]
        assert clock[-1] == pytest.approx(1.2346, rel=1e-3)

    def test_creates_parent_dirs(self, tmp_path, transposed_model):
        nested = tmp_path / "a" / "b" / "f6.csv"
        assert export_figure6(transposed_model.figure6(), nested).exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_figure6([], tmp_path / "x.csv")
