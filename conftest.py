"""Root test configuration: per-test hang protection.

``pytest.ini`` sets a per-test wall-clock cap (``timeout = 870``) so a
wedged test — a deadlocked serving future, a stuck worker pool — dumps
every thread's stack and fails the run instead of hanging CI forever.
When the ``pytest-timeout`` plugin is installed it owns that ini key
and this module does nothing beyond detecting it.  Without the plugin
(this repo adds no dependencies) the stdlib fallback below provides
the same contract: a daemon ``threading.Timer`` armed around each
test, firing ``faulthandler.dump_traceback(all_threads=True)`` — so
the post-mortem shows *where* every thread was stuck — followed by a
hard ``os._exit(1)``, the only reliable way to end a process whose
main thread is wedged.

``REPRO_TEST_TIMEOUT_S`` overrides the cap (``0`` disables it); the
test suite uses that to exercise the shim without waiting minutes.

Tests marked ``multiprocess`` (the fleet suite: real worker processes,
shared-memory rings, crash/respawn supervision) get a *tighter* cap
(``MULTIPROCESS_CAP_S``): a deadlocked fabric must fail in seconds,
not ride out the generic budget, and an orphaned worker process must
be reaped by the dump-and-die path before it can wedge CI.
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401

    HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    HAVE_TIMEOUT_PLUGIN = False


#: Hard per-test cap for ``@pytest.mark.multiprocess`` tests.
MULTIPROCESS_CAP_S = 120.0


def _cap_s(item) -> float:
    env = os.environ.get("REPRO_TEST_TIMEOUT_S")
    if env:
        return float(env)
    if item.get_closest_marker("multiprocess") is not None:
        return MULTIPROCESS_CAP_S
    value = item.config.getini("timeout")
    return float(value) if value else 0.0


if not HAVE_TIMEOUT_PLUGIN:

    def pytest_addoption(parser) -> None:
        # The plugin normally owns this ini key; register it so the
        # pytest.ini entry stays valid (no unknown-option warning) and
        # the shim can read it.
        parser.addini(
            "timeout",
            "per-test wall-clock cap in seconds (stdlib fallback for "
            "pytest-timeout)",
            default="0",
        )

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_protocol(item, nextitem):
        cap = _cap_s(item)
        if cap <= 0:
            yield
            return

        def dump_and_die() -> None:
            # Default capture redirects fd 2 into a buffer that dies
            # with the process; suspend it so the dump reaches the
            # terminal (same move pytest-timeout makes).
            capman = item.config.pluginmanager.getplugin("capturemanager")
            if capman is not None:
                capman.suspend_global_capture(in_=True)
            os.write(2, (
                f"\n*** test timed out after {cap:g}s: {item.nodeid} — "
                "dumping all thread stacks ***\n"
            ).encode())
            faulthandler.dump_traceback(all_threads=True, file=sys.__stderr__)
            os._exit(1)

        timer = threading.Timer(cap, dump_and_die)
        timer.daemon = True
        timer.start()
        try:
            yield
        finally:
            timer.cancel()
