from setuptools import find_packages, setup

setup(
    name="repro-esam",
    version="0.1.0",
    description=(
        "Reproduction of ESAM (DAC 2024): multiport SRAM CIM SNN "
        "accelerator with design-space sweeps and inference serving"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-sweep=repro.sweep.__main__:main",
            "repro-serve=repro.serve.__main__:main",
            "repro-reliability=repro.reliability.__main__:main",
            "repro-obs=repro.obs.__main__:main",
        ],
    },
)
