"""Online learning through the transposable SRAM port.

Demonstrates the paper's on-chip learning path (sections 2.2, 3.2 and
4.4.1): stochastic 1-bit STDP imprints input patterns into a tile's
synapse columns using column-wise read-modify-write accesses, and the
cost ledger shows why the transposed port matters — the same session on
the 6T baseline costs >10x more time.

Run:  python examples/online_learning_demo.py
"""

import numpy as np

from repro import CellType, EsamSystem
from repro.learning.online import column_update_comparison
from repro.learning.stdp import StochasticSTDP


def imprint_patterns(cell_type: CellType, steps: int = 60):
    """Teach neurons 0..3 of a random tile four distinct patterns."""
    rng = np.random.default_rng(11)
    system = EsamSystem.from_random((128, 32, 10), cell_type=cell_type, seed=5)
    engine = system.online_learning_engine(
        layer=0, rule=StochasticSTDP(p_potentiate=0.4, p_depress=0.2, seed=7)
    )
    patterns = (rng.random((4, 128)) < 0.3).astype(np.uint8)
    for step in range(steps):
        neuron = step % 4
        engine.learn(patterns[neuron], np.array([neuron]))
    weights = system.network.tiles[0].weight_matrix()
    agreements = [
        float((weights[:, k] == patterns[k]).mean()) for k in range(4)
    ]
    return engine.report, agreements


def main() -> None:
    print("=== section 4.4.1: column-update cost per cell ===")
    comparison = column_update_comparison()
    for cell, row in comparison.items():
        print(
            f"  {cell:8s}: {row['accesses']:5.0f} accesses, "
            f"read {row['read_time_ns']:7.2f} ns, "
            f"write {row['write_time_ns']:7.2f} ns, "
            f"{row['energy_pj']:7.2f} pJ"
        )
    best = comparison["1RW+4R"]
    print(f"  paper: 9.9 ns / 8.04 ns per column on 1RW+4R -> measured "
          f"{best['read_time_ns']:.2f} / {best['write_time_ns']:.2f} ns")

    print("\n=== STDP imprinting on the 1RW+4R tile ===")
    report, agreements = imprint_patterns(CellType.C1RW4R)
    for k, agreement in enumerate(agreements):
        print(f"  neuron {k}: column matches its pattern at "
              f"{agreement * 100:.1f}%")
    print(f"  learning cost: {report.column_updates} column updates, "
          f"{report.transposed_accesses} transposed accesses, "
          f"{report.time_ns:.1f} ns, {report.energy_pj:.1f} pJ")

    print("\n=== same session on the 6T baseline ===")
    report_6t, _ = imprint_patterns(CellType.C6T)
    print(f"  learning cost: {report_6t.time_ns:.0f} ns, "
          f"{report_6t.energy_pj:.0f} pJ")
    print(f"  transposable speedup: "
          f"{report_6t.time_ns / report.time_ns:.1f}x time, "
          f"{report_6t.energy_pj / report.energy_pj:.1f}x energy")


if __name__ == "__main__":
    main()
