"""Quickstart: classify digits on the ESAM accelerator.

Builds the paper's 768:256:256:256:10 binary SNN (training it on first
run and caching the weights), runs a handful of images through the
cycle-accurate hardware simulator, and prints the hardware report —
the same throughput / energy / power metrics the paper's abstract
quotes (44 MInf/s, 607 pJ/Inf, 29 mW for the 1RW+4R cell).

Run:  python examples/quickstart.py
"""

from repro import CellType, EsamSystem
from repro.learning.pretrained import get_reference_model


def main() -> None:
    print("loading (or training) the reference network ...")
    reference = get_reference_model(quality="full")
    print(f"  test accuracy (functional model): "
          f"{reference.test_accuracy * 100:.2f}%")

    system = EsamSystem(reference.snn, cell_type=CellType.C1RW4R, vprech=0.500)
    print(f"\nbuilt {system!r}")
    print(f"  neurons:  {system.network.neuron_count}")
    print(f"  synapses: {system.network.synapse_count}")
    print(f"  clock:    {system.network.clock_period_ns:.2f} ns")

    images = reference.dataset.test_images[:24]
    labels = reference.dataset.test_labels[:24]
    print(f"\nclassifying {len(images)} digits cycle-accurately ...")
    result = system.classify_images(images, labels)

    print(f"  predictions: {result.predictions.tolist()}")
    print(f"  labels:      {labels.tolist()}")
    print(f"  accuracy:    {result.accuracy * 100:.1f}%")
    print(f"\nhardware report:\n  {result.report.summary()}")
    metrics = result.report.metrics
    print(f"  energy breakdown: dynamic {metrics.dynamic_energy_pj:.0f} pJ, "
          f"clock {metrics.clock_energy_pj:.0f} pJ, "
          f"leakage {metrics.leakage_energy_pj:.0f} pJ")


if __name__ == "__main__":
    main()
