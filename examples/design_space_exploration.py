"""Design-space exploration: reproduce the paper's evaluation sweeps.

Walks the three design axes the paper explores and prints each table:

1. Figure 6 — transposed-port cost per bitcell flavor;
2. Figure 7 — precharge-voltage sweep of the decoupled read ports;
3. Figure 8 — full-system comparison of the five cell options,
   ending with the headline claims (3.1x speed, 2.2x energy
   efficiency, 44 MInf/s @ 607 pJ/Inf and 29 mW).

The system-level sweep runs through the sharded sweep engine
(``repro.sweep``) with the on-disk result cache enabled, so the second
invocation of this script serves Figure 8 from cache instead of
re-simulating.  The same sweep is available from the shell as
``python -m repro.sweep figure8 --claims``.

Run:  python examples/design_space_exploration.py
"""

from repro.sram.electrical import TransposedPortModel
from repro.sram.readport import ReadPortModel
from repro.sweep import SweepRunner, figure8_spec
from repro.system.report import (
    render_figure6,
    render_figure7,
    render_figure8,
    render_table2,
)
from repro.tile.pipeline import PipelineModel


def main() -> None:
    print(render_figure6(TransposedPortModel().figure6()))
    print()
    print(render_figure7(ReadPortModel().figure7()))
    print()
    print(render_table2(PipelineModel().table2()))
    print()

    print("running the system sweep (five cell options, schedule-based "
          "fast engine) ...")
    result = SweepRunner(figure8_spec(sample_images=16)).run()
    print(f"  {result.stats.evaluated} evaluated, "
          f"{result.stats.cache_hits} served from cache")
    print(render_figure8(result.figure8_rows()))

    claims = result.headline_claims()
    print()
    print("headline claims (paper -> measured):")
    print(f"  speed vs single-port:  3.1x -> {claims.speedup_vs_1rw:.2f}x")
    print(f"  energy efficiency:     2.2x -> "
          f"{claims.energy_efficiency_vs_1rw:.2f}x")
    print(f"  throughput:       44 MInf/s -> {claims.throughput_minf_s:.1f}")
    print(f"  energy/inference:    607 pJ -> {claims.energy_per_inf_pj:.0f}")
    print(f"  power:                29 mW -> {claims.power_mw:.1f}")


if __name__ == "__main__":
    main()
