"""Design-space exploration: reproduce the paper's evaluation sweeps.

Walks the three design axes the paper explores and prints each table:

1. Figure 6 — transposed-port cost per bitcell flavor;
2. Figure 7 — precharge-voltage sweep of the decoupled read ports;
3. Figure 8 — full-system comparison of the five cell options,
   ending with the headline claims (3.1x speed, 2.2x energy
   efficiency, 44 MInf/s @ 607 pJ/Inf and 29 mW).

Run:  python examples/design_space_exploration.py
"""

from repro.sram.electrical import TransposedPortModel
from repro.sram.readport import ReadPortModel
from repro.system.config import SystemConfig
from repro.system.evaluate import SystemEvaluator
from repro.system.report import (
    render_figure6,
    render_figure7,
    render_figure8,
    render_table2,
)
from repro.tile.pipeline import PipelineModel


def main() -> None:
    print(render_figure6(TransposedPortModel().figure6()))
    print()
    print(render_figure7(ReadPortModel().figure7()))
    print()
    print(render_table2(PipelineModel().table2()))
    print()

    print("running the cycle-accurate system sweep (five cell options) ...")
    evaluator = SystemEvaluator(SystemConfig(sample_images=16), quality="full")
    rows = evaluator.figure8()
    print(render_figure8(rows))

    claims = evaluator.headline_claims(rows)
    print()
    print("headline claims (paper -> measured):")
    print(f"  speed vs single-port:  3.1x -> {claims.speedup_vs_1rw:.2f}x")
    print(f"  energy efficiency:     2.2x -> "
          f"{claims.energy_efficiency_vs_1rw:.2f}x")
    print(f"  throughput:       44 MInf/s -> {claims.throughput_minf_s:.1f}")
    print(f"  energy/inference:    607 pJ -> {claims.energy_per_inf_pj:.0f}")
    print(f"  power:                29 mW -> {claims.power_mw:.1f}")


if __name__ == "__main__":
    main()
