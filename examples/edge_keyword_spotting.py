"""Edge scenario: always-on binary-pattern spotting on a single tile.

The paper motivates ESAM with battery-powered edge devices (wearables,
IoT sensors).  This example models such a deployment: a single-tile
binary SNN watches a stream of 128-bit sensor frames for a small set of
target signatures and must decide per frame whether to wake the host.

It shows the event-driven advantage quantitatively: energy per frame is
proportional to the number of *active* bits (spikes), so sparse idle
traffic is nearly free — the behaviour that makes CIM-P attractive for
always-on duty.

Run:  python examples/edge_keyword_spotting.py
"""

import numpy as np

from repro.sram.bitcell import CellType
from repro.system.energy import SystemEnergyModel
from repro.tile.network import EsamNetwork, InferenceTrace


def build_detector(rng, n_signatures: int = 8):
    """One tile whose neurons each match one stored signature."""
    signatures = (rng.random((n_signatures, 128)) < 0.25).astype(np.uint8)
    weights = signatures.T.copy()  # neuron k's column = signature k
    # Fire when at least 80 % of a signature's active bits agree:
    # Vmem = (#matching active bits) - (#active bits missing the weight).
    thresholds = np.maximum(1, (signatures.sum(axis=1) * 0.6).astype(np.int64))
    network = EsamNetwork(
        [weights], [thresholds], cell_type=CellType.C1RW4R, vprech=0.5
    )
    return network, signatures


def run_stream(network, signatures, rng, frames: int, activity: float,
               hit_rate: float):
    trace = InferenceTrace()
    thresholds = network.tiles[0].neurons[0].thresholds
    true_hits = 0
    detected = 0
    for _ in range(frames):
        if rng.random() < hit_rate:
            k = int(rng.integers(0, signatures.shape[0]))
            frame = (signatures[k] | (rng.random(128) < 0.02)).astype(np.uint8)
            is_hit = True
        else:
            frame = (rng.random(128) < activity).astype(np.uint8)
            is_hit = False
        # The single output tile is read out via Vmem; the wake decision
        # is the digital threshold comparison on the readout values.
        vmem = network.infer(frame.astype(bool), trace)
        fired = bool((vmem >= thresholds[: len(vmem)]).any())
        true_hits += int(is_hit)
        detected += int(fired and is_hit)
    metrics = SystemEnergyModel(network).metrics(trace)
    network.reset_stats()
    return metrics, true_hits, detected


def main() -> None:
    rng = np.random.default_rng(21)
    network, signatures = build_detector(rng)
    print(f"detector: single {network!r}")

    print("\nduty-cycle sweep (256 frames each):")
    print(f"  {'idle activity':>13s} {'pJ/frame':>9s} {'mW @ frame rate':>16s} "
          f"{'detected/true':>14s}")
    for activity in (0.01, 0.05, 0.15, 0.30):
        metrics, true_hits, detected = run_stream(
            network, signatures, rng, frames=256, activity=activity,
            hit_rate=0.05,
        )
        print(
            f"  {activity * 100:12.0f}% {metrics.energy_per_inference_pj:9.1f} "
            f"{metrics.power_mw:16.2f} {detected:7d}/{true_hits:<6d}"
        )
    print("\nsparser idle traffic -> proportionally less energy per frame:")
    print("the event-driven CIM-P tile only pays for spikes it serves.")


if __name__ == "__main__":
    main()
