"""Multi-timestep rate-coded operation (beyond the paper's static task).

The paper's benchmark is time-static (one timestep, binarised pixels);
its IF neuron and arbiter, however, serve arbitrary spike streams.
This example runs the trained network in the temporal mode: grayscale
pixels become Bernoulli spike trains, membranes persist across
timesteps, and classification reads out output spike *rates*.

It sweeps the observation window and prints the accuracy/latency/
workload trade-off — the classic SNN rate-coding curve.

Run:  python examples/temporal_rate_coding.py
"""

import numpy as np

from repro.learning.pretrained import get_reference_model
from repro.snn.encode import crop_corners
from repro.snn.temporal import (
    TemporalBinarySNN,
    rate_encode,
    temporal_workload_cycles,
)


def main() -> None:
    reference = get_reference_model(quality="full")
    model = TemporalBinarySNN(reference.snn.to_model())
    images = reference.dataset.test_images[:300]
    labels = reference.dataset.test_labels[:300]
    values = crop_corners(images)

    print("rate-coded classification vs observation window:")
    print(f"  {'timesteps':>9s} {'accuracy':>9s} {'hidden spikes':>14s} "
          f"{'arbiter cycles':>15s}")
    clock_ns = 1.2346  # 1RW+4R clock (Table 2)
    for timesteps in (1, 2, 4, 8, 16, 32):
        rng = np.random.default_rng(17)
        trains = rate_encode(values, timesteps, rng, max_rate=0.9)
        result = model.run(trains)
        accuracy = float((result.classify() == labels).mean())
        hidden = int(result.hidden_spike_totals.sum())
        # Hardware cost estimate: 4-port arbiters, 2 per hidden layer.
        cycles = temporal_workload_cycles(
            result.hidden_spike_totals / len(images), ports=4, arbiters=2
        )
        print(
            f"  {timesteps:9d} {accuracy * 100:8.1f}% "
            f"{hidden // len(images):14d} {cycles:11d} "
            f"(~{cycles * clock_ns:.0f} ns)"
        )
    print("\nlonger windows buy accuracy with proportionally more spikes —")
    print("the event-driven fabric's cost scales with exactly that count.")


if __name__ == "__main__":
    main()
