"""Low-power deployment modes of the ESAM system (section 4.4.2).

The paper's shipped configuration chases throughput (44 MInf/s); most
edge workloads need a few inferences per second.  This example measures
the nominal 1RW+4R design point cycle-accurately, then walks the
VDD / Vt-flavor / clock design space the paper sketches for such
deployments and prints the resulting power-vs-energy trade-off.

Run:  python examples/low_power_modes.py
"""

from repro.sram.bitcell import CellType
from repro.system.config import SystemConfig
from repro.system.evaluate import SystemEvaluator
from repro.system.lowpower import LowPowerScaler
from repro.tech.finfet import VtFlavor


def main() -> None:
    print("measuring the nominal 1RW+4R design point ...")
    evaluator = SystemEvaluator(SystemConfig(sample_images=16), quality="full")
    nominal = evaluator.evaluate_cell(CellType.C1RW4R)
    print(f"  nominal: {nominal.throughput_minf_s:.1f} MInf/s, "
          f"{nominal.energy_per_inf_pj:.0f} pJ/Inf, "
          f"{nominal.power_mw:.1f} mW")

    scaler = LowPowerScaler(nominal.metrics)
    print("\nVDD / Vt sweep:")
    print(f"  {'point':>14s} {'clock':>9s} {'throughput':>12s} "
          f"{'energy':>9s} {'power':>9s}")
    for point in scaler.sweep(vdds=(0.70, 0.60, 0.50),
                              flavors=(VtFlavor.SVT, VtFlavor.HVT)):
        print(
            f"  {point.label:>14s} {point.clock_period_ns:7.2f} ns "
            f"{point.throughput_inf_s / 1e6:9.1f} MInf/s "
            f"{point.energy_per_inf_pj:6.0f} pJ {point.power_mw:6.2f} mW"
        )

    print("\nduty-cycled always-on point (100 kInf/s class):")
    # Under-clock the 500 mV HVT point to a sensor-rate deployment.
    target = scaler.operating_point(0.50, VtFlavor.HVT, clock_slowdown=50.0)
    print(f"  {target.label} / 50x under-clock: "
          f"{target.throughput_inf_s / 1e3:.0f} kInf/s at "
          f"{target.power_mw * 1e3:.0f} uW, "
          f"{target.energy_per_inf_pj:.0f} pJ/Inf")
    print("\nconclusion: across the VDD/HVT sweep power falls ~6x while "
          "energy/inference stays in the same band (the paper's section "
          "4.4.2 claim); extreme under-clocking eventually becomes "
          "leakage-dominated, which bounds how far duty cycling helps.")


if __name__ == "__main__":
    main()
